// Command autoscaling walks the online fleet autoscaler end to end: it
// replays one simulated day of diurnal Llama 2 7B chat traffic against a
// 4-replica Mugi (256) 4x4 fleet twice — once with every replica pinned
// on at nominal voltage/frequency (the static PR-5-style plan) and once
// under each online scaling policy, which boots and drains replicas and
// shifts the survivors down the DVFS ladder as load swings — then prints
// both sides in $/day and SLO-violation minutes.
//
// Run with:
//
//	go run ./examples/autoscaling
package main

import (
	"fmt"

	"mugi"
)

func main() {
	cfg := mugi.AutoscaleConfig{
		Replica: mugi.ServeConfig{
			Model:  mugi.Llama2_7B,
			Design: mugi.NewMugi(256),
			Mesh:   mugi.NewMesh(4, 4),
		},
		MaxReplicas: 4,
	}
	// One simulated day: the diurnal rate swings +-80% around 0.05 req/s
	// over a 24 h period, so the fleet is oversized at night and tight at
	// the midday peak.
	trace := mugi.TraceConfig{
		Kind:     mugi.TraceDiurnal,
		Rate:     0.05,
		Requests: int(0.05 * 86400),
		Seed:     42,
		Period:   86400,
	}

	fmt.Println("static plan vs online autoscaling, one simulated day:")
	for _, policy := range mugi.AutoscalePolicies() {
		cfg.Policy = policy
		cmp, err := mugi.CompareAutoscale(cfg, trace)
		if err != nil {
			fmt.Println("ERROR:", err)
			continue
		}
		d := cmp.Dynamic
		fmt.Printf("  %-12s $%.4f/day vs static $%.4f/day (%.1f%% saved)  slo %.0f min  mean active %.2f  %d ups %d downs %d dvfs\n",
			policy.Name(), d.Day.DollarsPerDay, cmp.Static.Day.DollarsPerDay,
			100*cmp.SavingsPct, d.ViolationMinutes, d.MeanActiveReplicas,
			d.ScaleUps, d.ScaleDowns, d.DVFSShifts)
	}
}
