// llama-decode simulates one decoding step of Llama-2 70B (GQA) at batch 8
// and 4K context on Mugi and the paper's baselines, reproducing the
// Table-3 single-node comparison interactively.
package main

import (
	"fmt"

	"mugi"
)

func main() {
	workload := mugi.Llama2_70B_GQA.DecodeOps(8, 4096)
	fmt.Printf("workload: %s, batch 8, ctx 4096 (%d GEMM MACs/pass)\n\n",
		mugi.Llama2_70B_GQA.Name, workload.TotalMACs())

	designs := []mugi.Design{
		mugi.NewMugi(128),
		mugi.NewMugi(256),
		mugi.NewCarat(256),
		mugi.NewSystolicArray(16, false),
		mugi.NewSystolicArray(16, true),
		mugi.NewSIMDArray(16, false),
		mugi.NewTensorCore(),
	}
	fmt.Printf("%-16s %10s %10s %12s %12s %10s\n",
		"design", "tokens/s", "area mm2", "tokens/J", "tok/s/W", "util")
	for _, d := range designs {
		r := mugi.Simulate(mugi.SimParams{Design: d}, workload)
		area := d.Area(mugi.Cost45nm).Total()
		fmt.Printf("%-16s %10.3f %10.2f %12.2f %12.3f %9.1f%%\n",
			d.Name, r.TokensPerSecond, area,
			r.TokensPerJoule(workload.TokensPerPass()),
			r.TokensPerSecondPerWatt(), r.Utilization*100)
	}

	// Scale Mugi out over a 4x4 mesh, the paper's NoC configuration.
	mesh := mugi.Simulate(mugi.SimParams{Design: mugi.NewMugi(256), Mesh: mugi.NewMesh(4, 4)}, workload)
	fmt.Printf("\n4x4 NoC of Mugi(256): %.2f tokens/s (%.1fx single node)\n",
		mesh.TokensPerSecond,
		mesh.TokensPerSecond/mugi.Simulate(mugi.SimParams{Design: mugi.NewMugi(256)}, workload).TokensPerSecond)
}
