// carbon-report assesses the operational and embodied carbon of serving
// Llama-2 models on Mugi vs baselines — the paper's sustainability
// argument (§6.3.2, Fig. 15): a shared VLP array cuts both the energy per
// token (operational) and the silicon per token (embodied).
package main

import (
	"fmt"

	"mugi"
)

func main() {
	models := []mugi.ModelConfig{mugi.Llama2_7B, mugi.Llama2_13B, mugi.Llama2_70B_GQA}
	designs := []mugi.Design{
		mugi.NewMugi(256),
		mugi.NewCarat(256),
		mugi.NewSystolicArray(16, false),
		mugi.NewSIMDArray(16, false),
	}
	for _, m := range models {
		w := m.DecodeOps(8, 4096)
		fmt.Printf("-- %s (batch 8, ctx 4096) --\n", m.Name)
		fmt.Printf("%-16s %16s %16s %14s\n",
			"design", "operational g/tok", "embodied g/tok", "total g/tok")
		var saTotal float64
		type row struct {
			name  string
			f     mugi.Footprint
			total float64
		}
		var rows []row
		for _, d := range designs {
			r := mugi.Simulate(mugi.SimParams{Design: d}, w)
			energy := r.DynamicEnergy + r.LeakageWatts*r.Seconds
			f := mugi.AssessCarbon(energy, d.Area(mugi.Cost45nm).Total(), r.Seconds).
				PerToken(w.TokensPerPass())
			rows = append(rows, row{d.Name, f, f.Total()})
			if d.Name == "SA (16)" {
				saTotal = f.Total()
			}
		}
		for _, rw := range rows {
			fmt.Printf("%-16s %16.3g %16.3g %14.3g\n",
				rw.name, rw.f.OperationalG, rw.f.EmbodiedG, rw.total)
		}
		mugiTotal := rows[0].total
		fmt.Printf("Mugi(256) emits %.2fx less CO2eq per token than SA(16)\n\n", saTotal/mugiTotal)
	}
}
