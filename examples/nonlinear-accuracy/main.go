// nonlinear-accuracy compares the VLP approximation against PWL, Taylor
// and PA on the softmax/SiLU/GELU kernels, both uniformly over the input
// axis and value-weighted over a realistic workload distribution — the
// value-centric argument of paper §3.3-3.4 in miniature.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"mugi"
)

func main() {
	// A workload-like softmax input distribution: max-subtracted logits
	// concentrated a few units below zero.
	rng := rand.New(rand.NewSource(3))
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = -math.Abs(rng.NormFloat64()*1.5) - 0.1
	}

	vlp := mugi.NewApprox(mugi.LUTSizeConfig(mugi.Exp, 12, 4))
	vlp.SelectWindowMass(samples)
	approxes := []mugi.Approximator{
		vlp,
		mugi.NewPWL(mugi.Exp, -16, 0, 22),
		mugi.NewTaylor(mugi.Exp, -5, 9),
	}

	fmt.Println("softmax-exp kernel, inputs ~ concentrated around [-4, 0]:")
	fmt.Printf("%-8s %18s %16s %12s\n", "scheme", "weighted |err|", "max |err| axis", "cycles/elem")
	for _, a := range approxes {
		fmt.Printf("%-8s %18.3g %16.3g %12.0f\n",
			a.Name(), weightedErr(a, samples), maxErrOnAxis(a, -16, 0), a.CyclesPerElement())
	}

	// Activations cluster around zero: compare SiLU schemes there.
	for i := range samples {
		samples[i] = rng.NormFloat64()
	}
	vlpS := mugi.NewApprox(mugi.LUTSizeConfig(mugi.SiLU, 12, 4))
	vlpS.SelectWindowMass(samples)
	fmt.Println("\nSiLU kernel, inputs ~ N(0,1):")
	fmt.Printf("%-8s %18s %12s\n", "scheme", "weighted |err|", "cycles/elem")
	for _, a := range []mugi.Approximator{
		vlpS,
		mugi.NewPWL(mugi.SiLU, -5, 5, 22),
		mugi.NewPA(mugi.SiLU),
	} {
		fmt.Printf("%-8s %18.3g %12.0f\n", a.Name(), weightedErr(a, samples), a.CyclesPerElement())
	}

	// The window sensitivity that motivates per-layer tuning (Fig. 7).
	fmt.Println("\nVLP window placement sensitivity (weighted |err| of exp):")
	for i := range samples {
		samples[i] = -math.Abs(rng.NormFloat64()*1.5) - 0.1
	}
	for _, lo := range []int{-12, -8, -4, -3, -2, 0} {
		a := mugi.NewApprox(mugi.ApproxConfig{Op: mugi.Exp, LUTEMin: -14, LUTEMax: 6})
		a.SetWindow(lo)
		wl, wh := a.Window()
		fmt.Printf("  window [%3d,%3d]: %.4g\n", wl, wh, weightedErr(a, samples))
	}
}

func weightedErr(a mugi.Approximator, xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += math.Abs(a.Approx(x) - mugi.Exact(a.Op(), x))
	}
	return sum / float64(len(xs))
}

func maxErrOnAxis(a mugi.Approximator, lo, hi float64) float64 {
	max := 0.0
	for x := lo; x <= hi; x += (hi - lo) / 512 {
		if d := math.Abs(a.Approx(x) - mugi.Exact(a.Op(), x)); d > max {
			max = d
		}
	}
	return max
}
