// The -minuteserve mode: score entries under the benchmark's fixed
// rules, write and verify signed artifacts, and gate the committed
// leaderboard golden (the CI check).

package main

import (
	"bytes"
	"fmt"
	"os"

	"mugi"
	"mugi/internal/runner"
)

// minuteServeFlags carries the -minuteserve mode's flag values.
type minuteServeFlags struct {
	entry    string // score one entry ("kind[@rows]:RxC[:replicas][:profile]")
	report   string // write the signed artifact here
	verify   string // verify an artifact file
	diff     string // diff this artifact against the positional second path
	diffB    string // second -diff path (flag.Arg(0))
	check    string // regenerate the leaderboard and require byte-equality
	parallel int
}

// runMinuteServe dispatches the -minuteserve mode: exactly one of
// -verify, -diff, -check, -entry, or the default full leaderboard.
func runMinuteServe(f minuteServeFlags) error {
	runner.SetParallelism(f.parallel)
	switch {
	case f.verify != "":
		data, err := os.ReadFile(f.verify)
		if err != nil {
			return err
		}
		if err := mugi.VerifyReport(data); err != nil {
			return err
		}
		fmt.Printf("%s: OK — signed under the current rules (hash %.12s)\n",
			f.verify, mugi.MinuteServeRulesHash())
		return nil

	case f.diff != "":
		if f.diffB == "" {
			return fmt.Errorf("-diff needs two artifacts: -diff old.json new.json")
		}
		a, err := os.ReadFile(f.diff)
		if err != nil {
			return err
		}
		b, err := os.ReadFile(f.diffB)
		if err != nil {
			return err
		}
		out, err := mugi.DiffReports(a, b)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil

	case f.check != "":
		want, err := os.ReadFile(f.check)
		if err != nil {
			return err
		}
		if err := mugi.VerifyReport(want); err != nil {
			return fmt.Errorf("%s: committed golden fails verification: %w", f.check, err)
		}
		board, err := mugi.Leaderboard(mugi.MinuteServeEntries())
		if err != nil {
			return err
		}
		got := board.Encode()
		if !bytes.Equal(got, want) {
			if delta, derr := mugi.DiffReports(want, got); derr == nil {
				fmt.Print(delta)
			}
			return fmt.Errorf("%s: leaderboard drifted from the committed golden — regenerate with `make minuteserve-json` and review the diff", f.check)
		}
		fmt.Printf("%s: leaderboard current — %d entries, board digest %.12s\n",
			f.check, len(board.Entries), board.Digest)
		return nil

	case f.entry != "":
		e, err := mugi.ParseMinuteServeEntry(f.entry)
		if err != nil {
			return err
		}
		rep, err := mugi.MinuteServe(e)
		if err != nil {
			return err
		}
		fmt.Print(rep.Summary())
		if f.report != "" {
			if err := os.WriteFile(f.report, rep.Encode(), 0o644); err != nil {
				return err
			}
			fmt.Printf("signed artifact written to %s\n", f.report)
		}
		return nil

	default:
		board, err := mugi.Leaderboard(mugi.MinuteServeEntries())
		if err != nil {
			return err
		}
		fmt.Print(board.String())
		if f.report != "" {
			if err := os.WriteFile(f.report, board.Encode(), 0o644); err != nil {
				return err
			}
			fmt.Printf("signed artifact written to %s\n", f.report)
		}
		return nil
	}
}
