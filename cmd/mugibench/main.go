// Command mugibench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	mugibench -exp all        # every artifact in paper order
//	mugibench -exp tab3       # one artifact
//	mugibench -list           # available experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mugi/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	outDir := flag.String("out", "", "also write each artifact to <dir>/<id>.txt")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	run := func(e experiments.Entry) {
		out := e.Run().String()
		fmt.Println(out)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*outDir, e.ID+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	if *exp == "all" {
		for _, e := range experiments.Registry() {
			run(e)
		}
		return
	}
	e, err := experiments.ByID(*exp)
	if err != nil {
		fatal(err)
	}
	run(e)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mugibench:", err)
	os.Exit(1)
}
