// Command mugibench regenerates the tables and figures of the paper's
// evaluation section through the concurrent sweep runner.
//
// Usage:
//
//	mugibench -exp all              # every artifact in paper order
//	mugibench -exp all -parallel 8  # same, fanned over 8 workers
//	mugibench -exp tab3             # one artifact
//	mugibench -list                 # available experiment ids
//	mugibench -json                 # perf trajectory -> BENCH.json
//	mugibench -json -benchiters 1   # CI smoke: 1 iteration per kernel
//	mugibench -minuteserve                          # ranked leaderboard
//	mugibench -minuteserve -report MINUTESERVE.json # + signed artifact
//	mugibench -minuteserve -entry mugi:4x4          # score one entry
//	mugibench -minuteserve -verify MINUTESERVE.json # check a signature
//	mugibench -minuteserve -diff old.json new.json  # per-axis comparison
//	mugibench -minuteserve -check MINUTESERVE.json  # CI golden gate
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mugi"
	"mugi/internal/cliusage"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	outDir := flag.String("out", "", "also write each artifact to <dir>/<id>.txt")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	jsonBench := flag.Bool("json", false, "run the hot-path perf benchmarks and write the ns/op + allocs/op trajectory")
	benchFilePath := flag.String("benchfile", "BENCH.json", "output path for the -json trajectory")
	benchIters := flag.Int("benchiters", 0, "iterations per -json kernel (0 = auto-calibrate)")
	minuteServe := flag.Bool("minuteserve", false, "run the MinuteServe price-performance benchmark")
	msEntry := flag.String("entry", "", "score one entry: kind[@rows]:RxC[:replicas][:profile] (e.g. mugi:4x4, mugi@128:2x2:2:rag)")
	msReport := flag.String("report", "", "write the signed artifact (board, or entry report with -entry) to this path")
	msVerify := flag.String("verify", "", "verify a signed artifact file and exit")
	msDiff := flag.String("diff", "", "diff this artifact against a second artifact path argument")
	msCheck := flag.String("check", "", "regenerate the leaderboard and require byte-equality with this committed golden")
	flag.Usage = cliusage.Grouped(flag.CommandLine,
		"mugibench — regenerate the paper's evaluation artifacts.\nUsage: mugibench [mode flag] [flags]",
		[]cliusage.Group{
			{Title: "artifact regeneration (default mode)", Flags: []string{"exp", "list", "out"}},
			{Title: "perf trajectory (-json)", Flags: []string{"json", "benchfile", "benchiters"}},
			{Title: "MinuteServe benchmark (-minuteserve)", Flags: []string{"minuteserve", "entry", "report", "verify", "diff", "check"}},
			{Title: "shared"},
		})
	flag.Parse()

	if *minuteServe {
		if err := runMinuteServe(minuteServeFlags{
			entry: *msEntry, report: *msReport, verify: *msVerify,
			diff: *msDiff, diffB: flag.Arg(0), check: *msCheck,
			parallel: *parallel,
		}); err != nil {
			fatal(err)
		}
		return
	}

	if *jsonBench {
		// Default the benchmark pool to serial so ns/op is a stable,
		// machine-comparable trajectory; -parallel overrides explicitly.
		p := *parallel
		if p == 0 {
			p = 1
		}
		if err := runPerfJSON(*benchFilePath, *benchIters, p); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		for _, e := range mugi.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	var results []mugi.ExperimentResult
	if *exp == "all" {
		results = mugi.RunAll(mugi.Parallelism(*parallel))
	} else {
		var err error
		results, err = mugi.RunExperiments([]string{*exp}, mugi.Parallelism(*parallel))
		if err != nil {
			fatal(err)
		}
	}
	for _, res := range results {
		fmt.Println(res.Text)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*outDir, res.ID+".txt")
			if err := os.WriteFile(path, []byte(res.Text), 0o644); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mugibench:", err)
	os.Exit(1)
}
