// Command mugibench regenerates the tables and figures of the paper's
// evaluation section through the concurrent sweep runner.
//
// Usage:
//
//	mugibench -exp all              # every artifact in paper order
//	mugibench -exp all -parallel 8  # same, fanned over 8 workers
//	mugibench -exp tab3             # one artifact
//	mugibench -list                 # available experiment ids
//	mugibench -json                 # perf trajectory -> BENCH_PR9.json
//	mugibench -json -benchiters 1   # CI smoke: 1 iteration per kernel
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mugi"
	"mugi/internal/cliusage"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	outDir := flag.String("out", "", "also write each artifact to <dir>/<id>.txt")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	jsonBench := flag.Bool("json", false, "run the hot-path perf benchmarks and write the ns/op + allocs/op trajectory")
	benchFilePath := flag.String("benchfile", "BENCH_PR9.json", "output path for the -json trajectory")
	benchIters := flag.Int("benchiters", 0, "iterations per -json kernel (0 = auto-calibrate)")
	flag.Usage = cliusage.Grouped(flag.CommandLine,
		"mugibench — regenerate the paper's evaluation artifacts.\nUsage: mugibench [mode flag] [flags]",
		[]cliusage.Group{
			{Title: "artifact regeneration (default mode)", Flags: []string{"exp", "list", "out"}},
			{Title: "perf trajectory (-json)", Flags: []string{"json", "benchfile", "benchiters"}},
			{Title: "shared"},
		})
	flag.Parse()

	if *jsonBench {
		// Default the benchmark pool to serial so ns/op is a stable,
		// machine-comparable trajectory; -parallel overrides explicitly.
		p := *parallel
		if p == 0 {
			p = 1
		}
		if err := runPerfJSON(*benchFilePath, *benchIters, p); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		for _, e := range mugi.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	var results []mugi.ExperimentResult
	if *exp == "all" {
		results = mugi.RunAll(mugi.Parallelism(*parallel))
	} else {
		var err error
		results, err = mugi.RunExperiments([]string{*exp}, mugi.Parallelism(*parallel))
		if err != nil {
			fatal(err)
		}
	}
	for _, res := range results {
		fmt.Println(res.Text)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*outDir, res.ID+".txt")
			if err := os.WriteFile(path, []byte(res.Text), 0o644); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mugibench:", err)
	os.Exit(1)
}
