package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"mugi"
	"mugi/internal/accuracy"
	"mugi/internal/core"
	"mugi/internal/dist"
	"mugi/internal/infer"
	"mugi/internal/nonlinear"
	"mugi/internal/runner"
	"mugi/internal/tensor"
)

// The perf-trajectory emitter: -json times the functional-stack hot paths
// (VLP GEMM, decode step, accuracy-proxy loss, simulator pass, serving
// runs, capacity search, fleet plan, MinuteServe scoring) in-process and
// writes ns/op + allocs/op as JSON,
// the cross-PR baseline future optimisation PRs regress against (the
// external-sort tradition of publishing a measured perf trajectory rather
// than a claim). Kernels marked zeroAlloc gate the exit status: any
// steady-state allocation on a zero-allocation path is a regression and
// fails the run. Kernels with a maxAllocs bound gate scale-dependent
// paths the same way (a cold serving run may allocate per cache miss, but
// never per request again), which is what the CI smoke job checks.

// benchRecord is one benchmark line of the trajectory file.
type benchRecord struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchEntry is one PR's measurements in the trajectory history.
type benchEntry struct {
	Label      string        `json:"label"`
	Go         string        `json:"go"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

// benchFile is the BENCH.json schema: the whole cross-PR perf trajectory
// in one file, oldest history entry first. A -json run loads the
// committed file, drops any stale entry for the current label, and
// appends its own measurements — so the file accumulates the trajectory
// instead of scattering it across BENCH_PR*.json snapshots.
type benchFile struct {
	Schema  string       `json:"schema"`
	History []benchEntry `json:"history"`
}

const (
	// benchSchema versions the consolidated trajectory file.
	benchSchema = "mugi-perf-trajectory/3"
	// benchLabel names the entry this build's -json run writes.
	benchLabel = "pr10"
)

// fallbackHistory seeds the trajectory when the committed BENCH.json is
// absent or predates the consolidated schema: the PR 9 measurements,
// carried in-binary so a fresh checkout still writes a self-contained
// file with at least one baseline to compare against.
var fallbackHistory = []benchEntry{{
	Label: "pr9",
	Go:    "go1.24.0",
	Benchmarks: []benchRecord{
		{Name: "vlp_gemm_8x512x512", Iters: 72, NsPerOp: 1449296.7916666667, AllocsPerOp: 0},
		{Name: "decode_step", Iters: 512, NsPerOp: 248791.291015625, AllocsPerOp: 0},
		{Name: "proxy_loss", Iters: 14, NsPerOp: 7843396.357142857, AllocsPerOp: 0},
		{Name: "simulate_decode", Iters: 2000, NsPerOp: 987.5005, AllocsPerOp: 4},
		{Name: "serve_poisson_cold", Iters: 212, NsPerOp: 484402.7405660377, AllocsPerOp: 374},
		{Name: "serve_poisson_warm", Iters: 305, NsPerOp: 355467.7901639344, AllocsPerOp: 2},
		{Name: "serve_1m_requests", Iters: 1, NsPerOp: 10374287192, AllocsPerOp: 6},
		{Name: "capacity_search", Iters: 11, NsPerOp: 8639739.090909092, AllocsPerOp: 1589},
		{Name: "autoscale_week", Iters: 1, NsPerOp: 2301606551, AllocsPerOp: 6223},
		{Name: "fleet_faulty_week", Iters: 1, NsPerOp: 2242027980, AllocsPerOp: 1901},
		{Name: "flashcrowd_week", Iters: 1, NsPerOp: 1151909492, AllocsPerOp: 2250},
		{Name: "fleet_plan", Iters: 2, NsPerOp: 42152914.5, AllocsPerOp: 3620},
	},
}}

// loadHistory reads the committed trajectory from path, returning the
// in-binary fallback when the file is missing or predates the
// consolidated schema. Any stale entry for the current label is dropped
// so re-runs replace their own measurements instead of stacking them.
func loadHistory(path string) []benchEntry {
	data, err := os.ReadFile(path)
	if err != nil {
		return fallbackHistory
	}
	var file benchFile
	if err := json.Unmarshal(data, &file); err != nil || file.Schema != benchSchema {
		return fallbackHistory
	}
	history := make([]benchEntry, 0, len(file.History))
	for _, e := range file.History {
		if e.Label != benchLabel {
			history = append(history, e)
		}
	}
	return history
}

// perfKernel is one measurable hot path.
type perfKernel struct {
	name string
	op   func()
	// zeroAlloc marks paths asserted allocation-free after warmup; a
	// nonzero allocs/op fails the emitter.
	zeroAlloc bool
	// maxAllocs, when nonzero, is the allocation budget of a path that
	// legitimately allocates a bounded amount (cold-cache misses, stream
	// setup) but must never regress to per-request allocation; exceeding
	// it fails the emitter.
	maxAllocs float64
	// maxAllocRuns caps the AllocsPerRun sample for kernels with bounded
	// repeat budgets (the decode step is limited by MaxSeq) or very long
	// runs (the million-request trace). 0 = default.
	maxAllocRuns int
	// fixedIters pins the auto-calibrated iteration count for kernels
	// whose per-op cost depends on accumulated state (the decode step
	// grows its KV context) or whose single run is already seconds long,
	// keeping ns/op comparable across machines.
	fixedIters int
}

// measure times the kernel and samples its steady-state allocation rate.
// iters <= 0 auto-calibrates to roughly 100 ms of work.
func measure(k perfKernel, iters int) benchRecord {
	k.op() // warm caches, scratch buffers, and lazy tables
	if iters <= 0 && k.fixedIters > 0 {
		iters = k.fixedIters
	}
	if iters <= 0 {
		start := time.Now()
		k.op()
		per := time.Since(start)
		if per <= 0 {
			per = time.Nanosecond
		}
		iters = int(100 * time.Millisecond / per)
		if iters < 1 {
			iters = 1
		}
		if iters > 2000 {
			iters = 2000
		}
	}
	allocRuns := iters
	if allocRuns > 64 {
		allocRuns = 64
	}
	if k.maxAllocRuns > 0 && allocRuns > k.maxAllocRuns {
		allocRuns = k.maxAllocRuns
	}
	allocs := testing.AllocsPerRun(allocRuns, k.op)
	start := time.Now()
	for i := 0; i < iters; i++ {
		k.op()
	}
	elapsed := time.Since(start)
	return benchRecord{
		Name:        k.name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: allocs,
	}
}

// perfKernels builds the trajectory suite.
func perfKernels() []perfKernel {
	// VLP GEMM: the BenchmarkVLPGEMM shape (8×512 BF16 queries against
	// 512×512 INT4 weights) on the scratch-reusing path.
	gemmA := tensor.NewMatrix(8, 512)
	gemmW := tensor.NewMatrix(512, 512)
	seedFill(gemmA.Data, 1)
	seedFill(gemmW.Data, 0.3)
	gemmQ := core.QuantizeWeights(gemmW, 4, 128)
	gemmOut := tensor.NewMatrix(8, 512)
	gemmCfg := core.GEMMConfig{Rows: 128, Cols: 8, Mapping: core.MappingMugi}
	var gemmScratch core.GEMMScratch

	// Decode step: the full functional stack (VLP GEMM + KVQ cache + GQA
	// + VLP softmax/activation/RoPE). MaxSeq bounds the KV window; with
	// fixedIters equal to one full window the metric is the mean step
	// cost over a 512-token decode, independent of machine speed.
	decCfg := infer.Config{
		Layers: 2, Heads: 4, KVHeads: 2, Dim: 32, FFN: 64,
		Vocab: 64, MaxSeq: 512, RoPE: true,
		Activation: nonlinear.SiLU, Seed: 99,
	}
	dec, err := infer.New(decCfg)
	if err != nil {
		panic(err)
	}
	decOps := infer.VLPOps(decCfg.Activation)
	decTok := 0
	// Pre-decode to mid-window depth so the allocation sample measures a
	// deep KV context (allocation bugs can hide at shallow contexts where
	// reserved scratch still covers the growing attention operands).
	for dec.Pos() < decCfg.MaxSeq/2 {
		if _, err := dec.Step(decTok%decCfg.Vocab, decOps); err != nil {
			panic(err)
		}
		decTok++
	}

	// Accuracy proxy: one exact-stack Loss evaluation, the unit of every
	// Fig. 6/7 sweep cell.
	proxy := accuracy.NewProxy(accuracy.DefaultProxy(dist.Llama2))
	proxyImpl := accuracy.Uniform(accuracy.ExactImpl(proxy.Config().Activation))

	// Simulator pass: the unit of the Fig. 12-17 sweeps.
	simW := mugi.Llama2_70B_GQA.DecodeOps(8, 4096)
	simD := mugi.NewMugi(256)

	// Serving: one cold-cache Poisson run, matching BenchmarkServeSingleNode.
	trace, err := mugi.NewTrace(mugi.TraceConfig{
		Kind: mugi.TracePoisson, Rate: 0.05, Requests: 48, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	serveCfg := mugi.ServeConfig{Model: mugi.Llama2_7B, Design: mugi.NewMugi(256), Mesh: mugi.SingleNode}

	// Million-request streaming run: the sweep-scale configuration (lazy
	// trace, histogram percentiles, bounded bucketed sim cache) on a 4x4
	// mesh that keeps up with the offered rate.
	serve1mCfg := mugi.ServeConfig{Model: mugi.Llama2_7B, Design: mugi.NewMugi(256), Mesh: mugi.NewMesh(4, 4)}
	serve1mTrace := mugi.TraceConfig{Kind: mugi.TracePoisson, Rate: 0.5, Requests: 1_000_000, Seed: 1}

	// Capacity search: one full bracketing+bisection search of the
	// single-node cell, cold cache.
	capCfg := mugi.ServeConfig{Model: mugi.Llama2_7B, Design: mugi.NewMugi(256), Mesh: mugi.SingleNode}
	capSpec := mugi.CapacitySpec{
		Trace: mugi.TraceConfig{Kind: mugi.TracePoisson, Requests: 48, Seed: 1},
		Iters: 4,
	}

	// MinuteServe entry: one full benchmark scoring — SLO-bound capacity
	// search, the scored minute, TCO pricing, artifact signing and
	// verification — of the reference submission, cold cache.
	msEntry, err := mugi.ParseMinuteServeEntry("mugi:4x4")
	if err != nil {
		panic(err)
	}

	// Fleet plan: the full planner over a 2-design x 2-mesh x {1,2}
	// grid under JSQ routing — router, per-replica schedulers, histogram
	// merges, TCO pricing, and both frontiers — cold cache.
	fleetSpec := mugi.FleetPlanSpec{
		Base: mugi.ServeConfig{Model: mugi.Llama2_7B},
		Cells: mugi.FleetGrid(
			[]mugi.Design{mugi.NewMugi(256), mugi.NewSystolicArray(16, true)},
			[]mugi.Mesh{mugi.SingleNode, mugi.NewMesh(2, 2)},
			[]int{1, 2},
		),
		Policy: mugi.FleetJSQ,
		Trace:  mugi.TraceConfig{Kind: mugi.TracePoisson, Requests: 16, Seed: 1},
		SLO:    mugi.FleetSLO{TTFTP99: 60, LatencyP99: 300},
		Iters:  3,
	}

	// Faulty fleet week: a three-replica JSQ fleet serving a week of
	// diurnal arrivals under seeded fault injection — ~200 crashes, each
	// orphaning in-flight work the router fails over — through the
	// remove-and-re-dispatch fixed point, cold cache.
	faultyFleetCfg := mugi.FleetConfig{
		Replica:       mugi.ServeConfig{Model: mugi.Llama2_7B, Design: mugi.NewMugi(256), Mesh: mugi.NewMesh(2, 2)},
		Replicas:      3,
		Policy:        mugi.FleetJSQ,
		Faults:        mugi.FaultSpec{MTBF: 7200, MTTR: 600, Seed: 7},
		MaxRedispatch: 2,
	}
	faultyFleetTrace := mugi.TraceConfig{
		Kind: mugi.TraceDiurnal, Rate: 0.02, Requests: int(0.02 * 7 * 86400),
		Seed: 42, Period: 86400,
	}

	// Flash-crowd week: a tenanted two-replica JSQ fleet serving a week
	// of flash-crowd arrivals (4x surges over a calm baseline) through
	// the full overload stack — per-class admission, strict-priority
	// dispatch, brownout ladder, retrying clients — cold cache.
	crowdCfg := mugi.FleetConfig{
		Replica: mugi.ServeConfig{
			Model: mugi.Llama2_7B, Design: mugi.NewMugi(256), Mesh: mugi.NewMesh(2, 2),
			MaxQueue: 12, MaxBatch: 8,
			Admission:   &mugi.AdmissionSpec{},
			Brownout:    &mugi.BrownoutSpec{Steps: mugi.DefaultBrownoutSteps(), HighWater: 8, Dwell: 10},
			ClientRetry: mugi.ClientRetrySpec{Backoff: 15, MaxAttempts: 2},
		},
		Replicas: 2,
		Policy:   mugi.FleetJSQ,
	}
	crowdTrace := mugi.TraceConfig{
		Kind: mugi.TraceFlashcrowd, Rate: 0.02, Requests: int(0.02 * 7 * 86400),
		Seed: 42, SurgeFactor: 4, SurgeSpan: 600, SurgePeriod: 7200,
		Tenants: []mugi.TenantSpec{
			{Class: mugi.TenantInteractive, Share: 0.3},
			{Class: mugi.TenantStandard, Share: 0.4},
			{Class: mugi.TenantBestEffort, Share: 0.3},
		},
	}

	// Autoscale week: the full static-vs-dynamic comparison — always-on
	// JSQ fleet, then the online controller (power states, boot lag,
	// DVFS) — over a simulated week of diurnal arrivals, cold cache.
	autoCfg := mugi.AutoscaleConfig{
		Replica:     mugi.ServeConfig{Model: mugi.Llama2_7B, Design: mugi.NewMugi(256), Mesh: mugi.NewMesh(4, 4)},
		MaxReplicas: 4,
	}
	autoTrace := mugi.TraceConfig{
		Kind: mugi.TraceDiurnal, Rate: 0.02, Requests: int(0.02 * 7 * 86400),
		Seed: 42, Period: 86400,
	}

	return []perfKernel{
		{
			name:      "vlp_gemm_8x512x512",
			zeroAlloc: true,
			op: func() {
				core.MultiplyInto(gemmCfg, gemmA, gemmQ, gemmOut, &gemmScratch)
			},
		},
		{
			name:      "decode_step",
			zeroAlloc: true,
			// Keep the alloc sample inside the pre-decoded deep window so
			// it measures steady-state context-growing steps.
			maxAllocRuns: 32,
			fixedIters:   512,
			op: func() {
				if dec.Pos() >= decCfg.MaxSeq {
					dec.Reset()
				}
				if _, err := dec.Step(decTok%decCfg.Vocab, decOps); err != nil {
					panic(err)
				}
				decTok++
			},
		},
		{
			name:      "proxy_loss",
			zeroAlloc: true,
			op: func() {
				proxy.Loss(proxyImpl)
			},
		},
		{
			name: "simulate_decode",
			op: func() {
				mugi.Simulate(mugi.SimParams{Design: simD}, simW)
			},
		},
		{
			name: "serve_poisson_cold",
			// Cold runs allocate only per cache miss (bounded by distinct
			// quantized step shapes), never per request: >= 10x under the
			// PR 3 baseline of 12,643, CI-gated.
			maxAllocs: 1264,
			op: func() {
				mugi.ResetSimCache()
				if _, err := mugi.Serve(serveCfg, trace); err != nil {
					panic(err)
				}
			},
		},
		{
			name: "serve_poisson_warm",
			// Steady state: pooled scheduler + memoized workloads + cache
			// hits leave only the stream wrapper and closure setup.
			maxAllocs: 64,
			op: func() {
				if _, err := mugi.Serve(serveCfg, trace); err != nil {
					panic(err)
				}
			},
		},
		{
			name: "serve_1m_requests",
			// One full run is seconds of work; a single iteration and a
			// single allocation sample keep the emitter usable while still
			// gating scale-independence: the 200k budget is 5x under
			// one-alloc-per-request (the measured run allocates single
			// digits; the headroom absorbs cold-cache and GC noise).
			fixedIters:   1,
			maxAllocRuns: 1,
			maxAllocs:    200_000,
			op: func() {
				src, err := mugi.NewTraceStream(serve1mTrace)
				if err != nil {
					panic(err)
				}
				rep, err := mugi.ServeStream(serve1mCfg, src)
				if err != nil {
					panic(err)
				}
				if rep.Completed != serve1mTrace.Requests {
					panic(fmt.Sprintf("serve_1m_requests completed %d", rep.Completed))
				}
			},
		},
		{
			name: "capacity_search",
			op: func() {
				mugi.ResetSimCache()
				if _, err := mugi.FindCapacity(capCfg, capSpec); err != nil {
					panic(err)
				}
			},
		},
		{
			name: "autoscale_week",
			// One comparison is seconds of work (12k requests on both
			// sides plus calibration probes). The controller allocates per
			// run (prescan counts, windows, reports) and per cache miss,
			// never per tick or per request: the budget sits well under
			// one alloc per request (~6.2k measured cold for 12k requests).
			fixedIters:   1,
			maxAllocRuns: 1,
			maxAllocs:    8_000,
			op: func() {
				mugi.ResetSimCache()
				cmp, err := mugi.CompareAutoscale(autoCfg, autoTrace)
				if err != nil {
					panic(err)
				}
				if cmp.Dynamic.Completed != autoTrace.Requests {
					panic(fmt.Sprintf("autoscale_week completed %d", cmp.Dynamic.Completed))
				}
			},
		},
		{
			name: "fleet_faulty_week",
			// One run is seconds of work (12k requests, ~200 crashes, every
			// crash-dirtied replica re-run to the failover fixed point). The
			// router allocates per replica re-run and per cache miss, never
			// per request or per scheduler step: the budget sits well under
			// one alloc per request.
			fixedIters:   1,
			maxAllocRuns: 1,
			maxAllocs:    8_000,
			op: func() {
				mugi.ResetSimCache()
				src, err := mugi.NewTraceStream(faultyFleetTrace)
				if err != nil {
					panic(err)
				}
				rep, err := mugi.RunFleet(faultyFleetCfg, src)
				if err != nil {
					panic(err)
				}
				f := rep.Fleet
				if f.Completed+f.Shed != f.Requests {
					panic(fmt.Sprintf("fleet_faulty_week leaked requests: %d+%d != %d",
						f.Completed, f.Shed, f.Requests))
				}
				if f.Crashes == 0 {
					panic("fleet_faulty_week injected no crashes")
				}
			},
		},
		{
			name: "flashcrowd_week",
			// One run is a week of surging arrivals (12k requests, ~7k
			// surge-phase extras) through the full overload stack.
			// Admission, brownout and retry state are per-replica and
			// per-run, never per request: the budget sits well under one
			// alloc per original request.
			fixedIters:   1,
			maxAllocRuns: 1,
			maxAllocs:    10_000,
			op: func() {
				mugi.ResetSimCache()
				src, err := mugi.NewTraceStream(crowdTrace)
				if err != nil {
					panic(err)
				}
				rep, err := mugi.RunFleet(crowdCfg, src)
				if err != nil {
					panic(err)
				}
				f := rep.Fleet
				if f.Completed+f.Shed+f.Orphaned != f.Requests {
					panic(fmt.Sprintf("flashcrowd_week leaked requests: %d+%d+%d != %d",
						f.Completed, f.Shed, f.Orphaned, f.Requests))
				}
				if !f.OverloadOn || !f.TenantsOn {
					panic("flashcrowd_week ran without the overload stack")
				}
			},
		},
		{
			name: "minuteserve_entry",
			// One scored entry is a capacity search (12 probes of 32
			// requests) plus the scored minute, then signing and verifying
			// the artifact. The scorer allocates per probe and per cache
			// miss, never per request or scheduler step: the budget sits
			// ~4x over the measured cold run (~1.2k allocs).
			fixedIters:   1,
			maxAllocRuns: 1,
			maxAllocs:    5_000,
			op: func() {
				mugi.ResetSimCache()
				rep, err := mugi.MinuteServe(msEntry)
				if err != nil {
					panic(err)
				}
				if !rep.Sustainable {
					panic("minuteserve_entry scored unsustainable")
				}
				if err := mugi.VerifyReport(rep.Encode()); err != nil {
					panic(err)
				}
			},
		},
		{
			name: "fleet_plan",
			// The planner allocates per probe (routed schedules, reports,
			// frontier copies) but never per scheduler step: the budget is
			// sized ~4x over the measured cold run so a regression to
			// per-step allocation (thousands of steps per probe) trips it.
			maxAllocs: 15_000,
			op: func() {
				mugi.ResetSimCache()
				results := mugi.PlanFleet(fleetSpec)
				for _, r := range results {
					if r.Err != nil {
						panic(r.Err)
					}
				}
				if len(mugi.FleetFrontier(results, mugi.FrontierByDollar)) == 0 {
					panic("fleet_plan produced an empty frontier")
				}
			},
		},
	}
}

// seedFill deterministically fills data with a small LCG stream scaled by
// std, so the emitter needs no math/rand state shared with the benchmarks.
func seedFill(data []float32, std float64) {
	state := uint64(0x9E3779B97F4A7C15)
	for i := range data {
		state = state*6364136223846793005 + 1442695040888963407
		// Map the top bits onto [-1, 1).
		u := float64(int64(state>>11)) / float64(1<<52)
		data[i] = float32((u - 1) * std)
	}
}

// runPerfJSON executes the trajectory suite and writes the JSON file:
// the committed history plus this run's measurements under benchLabel.
// It returns an error if any zero-allocation path allocated.
func runPerfJSON(path string, iters, parallel int) error {
	runner.SetParallelism(parallel)
	entry := benchEntry{Label: benchLabel, Go: runtime.Version()}
	var regressions []string
	for _, k := range perfKernels() {
		rec := measure(k, iters)
		entry.Benchmarks = append(entry.Benchmarks, rec)
		status := ""
		if (k.zeroAlloc && rec.AllocsPerOp > 0) ||
			(k.maxAllocs > 0 && rec.AllocsPerOp > k.maxAllocs) {
			status = "  ALLOC REGRESSION"
			regressions = append(regressions, k.name)
		}
		fmt.Fprintf(os.Stderr, "%-22s %12.0f ns/op %8.0f allocs/op%s\n",
			rec.Name, rec.NsPerOp, rec.AllocsPerOp, status)
	}
	file := benchFile{Schema: benchSchema, History: append(loadHistory(path), entry)}
	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	if len(regressions) > 0 {
		return fmt.Errorf("zero-allocation hot paths allocated: %v", regressions)
	}
	return nil
}
