package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"mugi"
	"mugi/internal/accuracy"
	"mugi/internal/core"
	"mugi/internal/dist"
	"mugi/internal/infer"
	"mugi/internal/nonlinear"
	"mugi/internal/runner"
	"mugi/internal/tensor"
)

// The perf-trajectory emitter: -json times the functional-stack hot paths
// (VLP GEMM, decode step, accuracy-proxy loss, simulator pass, serving
// run) in-process and writes ns/op + allocs/op as JSON, the cross-PR
// baseline future optimisation PRs regress against (the external-sort
// tradition of publishing a measured perf trajectory rather than a claim).
// Kernels marked zeroAlloc gate the exit status: any steady-state
// allocation on a zero-allocation path is a regression and fails the run,
// which is what the CI smoke job checks.

// benchRecord is one benchmark line of the trajectory file.
type benchRecord struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchFile is the BENCH_PR3.json schema.
type benchFile struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`
	// Baseline carries the pre-optimization measurements (PR 2 HEAD,
	// same shapes, Xeon @ 2.10 GHz) so the file documents the speedup it
	// gates, not just the current numbers.
	Baseline   []benchRecord `json:"baseline_pr2"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

// baselinePR2 is the pre-PR trajectory, measured at the PR 2 commit with
// identical kernel shapes and iteration windows before any hot-path
// change landed.
var baselinePR2 = []benchRecord{
	{Name: "vlp_gemm_8x512x512", Iters: 43, NsPerOp: 27024789, AllocsPerOp: 2},
	{Name: "decode_step", Iters: 512, NsPerOp: 968821, AllocsPerOp: 106},
	{Name: "proxy_loss", Iters: 512, NsPerOp: 8408943, AllocsPerOp: 134},
	{Name: "simulate_decode", Iters: 2000, NsPerOp: 1170, AllocsPerOp: 4},
	{Name: "serve_poisson_cold", Iters: 7, NsPerOp: 12361047, AllocsPerOp: 12642},
}

// perfKernel is one measurable hot path.
type perfKernel struct {
	name string
	op   func()
	// zeroAlloc marks paths asserted allocation-free after warmup; a
	// nonzero allocs/op fails the emitter.
	zeroAlloc bool
	// maxAllocRuns caps the AllocsPerRun sample for kernels with bounded
	// repeat budgets (the decode step is limited by MaxSeq). 0 = default.
	maxAllocRuns int
	// fixedIters pins the auto-calibrated iteration count for kernels
	// whose per-op cost depends on accumulated state (the decode step
	// grows its KV context), keeping ns/op comparable across machines.
	fixedIters int
}

// measure times the kernel and samples its steady-state allocation rate.
// iters <= 0 auto-calibrates to roughly 100 ms of work.
func measure(k perfKernel, iters int) benchRecord {
	k.op() // warm caches, scratch buffers, and lazy tables
	if iters <= 0 && k.fixedIters > 0 {
		iters = k.fixedIters
	}
	if iters <= 0 {
		start := time.Now()
		k.op()
		per := time.Since(start)
		if per <= 0 {
			per = time.Nanosecond
		}
		iters = int(100 * time.Millisecond / per)
		if iters < 1 {
			iters = 1
		}
		if iters > 2000 {
			iters = 2000
		}
	}
	allocRuns := iters
	if allocRuns > 64 {
		allocRuns = 64
	}
	if k.maxAllocRuns > 0 && allocRuns > k.maxAllocRuns {
		allocRuns = k.maxAllocRuns
	}
	allocs := testing.AllocsPerRun(allocRuns, k.op)
	start := time.Now()
	for i := 0; i < iters; i++ {
		k.op()
	}
	elapsed := time.Since(start)
	return benchRecord{
		Name:        k.name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: allocs,
	}
}

// perfKernels builds the trajectory suite.
func perfKernels() []perfKernel {
	// VLP GEMM: the BenchmarkVLPGEMM shape (8×512 BF16 queries against
	// 512×512 INT4 weights) on the scratch-reusing path.
	gemmA := tensor.NewMatrix(8, 512)
	gemmW := tensor.NewMatrix(512, 512)
	seedFill(gemmA.Data, 1)
	seedFill(gemmW.Data, 0.3)
	gemmQ := core.QuantizeWeights(gemmW, 4, 128)
	gemmOut := tensor.NewMatrix(8, 512)
	gemmCfg := core.GEMMConfig{Rows: 128, Cols: 8, Mapping: core.MappingMugi}
	var gemmScratch core.GEMMScratch

	// Decode step: the full functional stack (VLP GEMM + KVQ cache + GQA
	// + VLP softmax/activation/RoPE). MaxSeq bounds the KV window; with
	// fixedIters equal to one full window the metric is the mean step
	// cost over a 512-token decode, independent of machine speed.
	decCfg := infer.Config{
		Layers: 2, Heads: 4, KVHeads: 2, Dim: 32, FFN: 64,
		Vocab: 64, MaxSeq: 512, RoPE: true,
		Activation: nonlinear.SiLU, Seed: 99,
	}
	dec, err := infer.New(decCfg)
	if err != nil {
		panic(err)
	}
	decOps := infer.VLPOps(decCfg.Activation)
	decTok := 0
	// Pre-decode to mid-window depth so the allocation sample measures a
	// deep KV context (allocation bugs can hide at shallow contexts where
	// reserved scratch still covers the growing attention operands).
	for dec.Pos() < decCfg.MaxSeq/2 {
		if _, err := dec.Step(decTok%decCfg.Vocab, decOps); err != nil {
			panic(err)
		}
		decTok++
	}

	// Accuracy proxy: one exact-stack Loss evaluation, the unit of every
	// Fig. 6/7 sweep cell.
	proxy := accuracy.NewProxy(accuracy.DefaultProxy(dist.Llama2))
	proxyImpl := accuracy.Uniform(accuracy.ExactImpl(proxy.Config().Activation))

	// Simulator pass: the unit of the Fig. 12-17 sweeps.
	simW := mugi.Llama2_70B_GQA.DecodeOps(8, 4096)
	simD := mugi.NewMugi(256)

	// Serving: one cold-cache Poisson run, matching BenchmarkServeSingleNode.
	trace, err := mugi.NewTrace(mugi.TraceConfig{
		Kind: mugi.TracePoisson, Rate: 0.05, Requests: 48, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	serveCfg := mugi.ServeConfig{Model: mugi.Llama2_7B, Design: mugi.NewMugi(256), Mesh: mugi.SingleNode}

	return []perfKernel{
		{
			name:      "vlp_gemm_8x512x512",
			zeroAlloc: true,
			op: func() {
				core.MultiplyInto(gemmCfg, gemmA, gemmQ, gemmOut, &gemmScratch)
			},
		},
		{
			name:      "decode_step",
			zeroAlloc: true,
			// Keep the alloc sample inside the pre-decoded deep window so
			// it measures steady-state context-growing steps.
			maxAllocRuns: 32,
			fixedIters:   512,
			op: func() {
				if dec.Pos() >= decCfg.MaxSeq {
					dec.Reset()
				}
				if _, err := dec.Step(decTok%decCfg.Vocab, decOps); err != nil {
					panic(err)
				}
				decTok++
			},
		},
		{
			name:      "proxy_loss",
			zeroAlloc: true,
			op: func() {
				proxy.Loss(proxyImpl)
			},
		},
		{
			name: "simulate_decode",
			op: func() {
				mugi.Simulate(mugi.SimParams{Design: simD}, simW)
			},
		},
		{
			name: "serve_poisson_cold",
			op: func() {
				mugi.ResetSimCache()
				if _, err := mugi.Serve(serveCfg, trace); err != nil {
					panic(err)
				}
			},
		},
	}
}

// seedFill deterministically fills data with a small LCG stream scaled by
// std, so the emitter needs no math/rand state shared with the benchmarks.
func seedFill(data []float32, std float64) {
	state := uint64(0x9E3779B97F4A7C15)
	for i := range data {
		state = state*6364136223846793005 + 1442695040888963407
		// Map the top bits onto [-1, 1).
		u := float64(int64(state>>11)) / float64(1<<52)
		data[i] = float32((u - 1) * std)
	}
}

// runPerfJSON executes the trajectory suite and writes the JSON file.
// It returns an error if any zero-allocation path allocated.
func runPerfJSON(path string, iters, parallel int) error {
	runner.SetParallelism(parallel)
	file := benchFile{Schema: "mugi-perf-trajectory/1", Go: runtime.Version(), Baseline: baselinePR2}
	var regressions []string
	for _, k := range perfKernels() {
		rec := measure(k, iters)
		file.Benchmarks = append(file.Benchmarks, rec)
		status := ""
		if k.zeroAlloc && rec.AllocsPerOp > 0 {
			status = "  ALLOC REGRESSION"
			regressions = append(regressions, k.name)
		}
		fmt.Fprintf(os.Stderr, "%-22s %12.0f ns/op %8.0f allocs/op%s\n",
			rec.Name, rec.NsPerOp, rec.AllocsPerOp, status)
	}
	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	if len(regressions) > 0 {
		return fmt.Errorf("zero-allocation hot paths allocated: %v", regressions)
	}
	return nil
}
