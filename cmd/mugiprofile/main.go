// Command mugiprofile generates the synthetic workload distributions that
// substitute the paper's GPU profiling (Fig. 4): per model family and
// nonlinear op, it prints the value histogram, the exponent histogram, and
// the dominant 8-wide exponent window the sliding-window LUT would target.
//
// Usage:
//
//	mugiprofile -family "Llama 2" -op softmax -depth 0.5 -n 65536
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"mugi/internal/cliusage"
	"mugi/internal/dist"
	"mugi/internal/nonlinear"
)

func main() {
	family := flag.String("family", "Llama 2", "model family: Llama 2 | Whisper | SwinV2 | ViViT")
	opName := flag.String("op", "softmax", "nonlinear op: softmax | silu | gelu")
	depth := flag.Float64("depth", 0.5, "normalized layer depth in [0,1]")
	n := flag.Int("n", 1<<16, "sample count")
	seed := flag.Int64("seed", 1, "RNG seed")
	flag.Usage = cliusage.Grouped(flag.CommandLine,
		"mugiprofile — synthetic workload distribution profiles (Fig. 4).\nUsage: mugiprofile [flags]",
		[]cliusage.Group{
			{Title: "profile selection", Flags: []string{"family", "op", "depth"}},
			{Title: "sampling", Flags: []string{"n", "seed"}},
			{Title: "other"},
		})
	flag.Parse()

	op, err := parseOp(*opName)
	if err != nil {
		fatal(err)
	}
	prof, err := dist.ProfileFor(dist.Family(*family), op)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	var xs []float64
	if op == nonlinear.Exp {
		for len(xs) < *n {
			xs = append(xs, prof.SoftmaxInputs(rng, *depth, 128)...)
		}
	} else {
		xs = prof.ActivationInputs(rng, *depth, *n)
	}

	fmt.Printf("%s %v at depth %.2f: %d samples\n", *family, op, *depth, len(xs))
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	fmt.Println("\nvalue histogram:")
	centers, density := dist.ValueHistogram(xs, lo, hi, 24)
	maxD := 0.0
	for _, d := range density {
		if d > maxD {
			maxD = d
		}
	}
	for i := range centers {
		bar := ""
		if maxD > 0 {
			bar = strings.Repeat("#", int(density[i]/maxD*50))
		}
		fmt.Printf("%9.2f | %s\n", centers[i], bar)
	}

	var nz []float64
	for _, x := range xs {
		if x != 0 {
			nz = append(nz, x)
		}
	}
	hist := dist.ExponentHistogram(nz, -24)
	fmt.Println("\nexponent histogram:")
	for e := -24; e <= 8; e++ {
		if hist[e] == 0 {
			continue
		}
		fmt.Printf("  2^%-4d %6.2f%% %s\n", e, hist[e]*100, strings.Repeat("#", int(hist[e]*200)))
	}
	wlo, mass := dist.DominantWindow(hist, 8)
	fmt.Printf("\ndominant 8-wide exponent window: [%d, %d] covering %.1f%% of mass\n",
		wlo, wlo+7, mass*100)
}

func parseOp(s string) (nonlinear.Op, error) {
	switch strings.ToLower(s) {
	case "softmax", "exp", "sm":
		return nonlinear.Exp, nil
	case "silu", "s":
		return nonlinear.SiLU, nil
	case "gelu", "g":
		return nonlinear.GELU, nil
	default:
		return 0, fmt.Errorf("unknown op %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mugiprofile:", err)
	os.Exit(1)
}
