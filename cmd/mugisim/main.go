// Command mugisim runs architecture simulations: a single (design, model,
// mesh) point with the Table-3 style metrics and latency breakdown, a
// request-level serving scenario with -serve, or — with -all — the full
// experiment registry fanned across the concurrent sweep runner.
//
// Usage:
//
//	mugisim -design mugi -rows 256 -model "Llama 2 70B (GQA)" -batch 8 -seq 4096
//	mugisim -design sa -rows 16 -mesh 4x4 -model "Llama 2 7B"
//	mugisim -serve -mesh 4x4 -rate 0.5 -requests 48 -trace bursty
//	mugisim -capacity -designs mugi,saf -meshes 1x1,2x2,4x4 -parallel 8
//	mugisim -all -parallel 8            # every paper artifact, 8 workers
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mugi"
	"mugi/internal/arch"
	"mugi/internal/model"
	"mugi/internal/noc"
	"mugi/internal/runner"
	"mugi/internal/sim"
)

func main() {
	design := flag.String("design", "mugi", "design: mugi|mugil|carat|sa|saf|sd|sdf|tensor")
	rows := flag.Int("rows", 256, "array height (VLP) or dimension (SA/SD)")
	meshStr := flag.String("mesh", "1x1", "NoC mesh, e.g. 1x1 or 4x4")
	modelName := flag.String("model", "Llama 2 70B (GQA)", "model name (see Table 1)")
	batch := flag.Int("batch", 8, "batch size")
	seq := flag.Int("seq", 4096, "context/sequence length")
	prefill := flag.Bool("prefill", false, "simulate prefill instead of decode")
	all := flag.Bool("all", false, "regenerate every registered experiment instead of one point")
	parallel := flag.Int("parallel", 0, "worker pool size for -all (0 = GOMAXPROCS)")
	serveMode := flag.Bool("serve", false, "run a request-level serving scenario instead of one pass")
	traceKind := flag.String("trace", "poisson", "arrival process for -serve: poisson|bursty|diurnal")
	rate := flag.Float64("rate", 0.5, "mean arrival rate in requests/s for -serve")
	requests := flag.Int("requests", 48, "request count for -serve")
	traceSeed := flag.Int64("seed", 1, "trace seed for -serve")
	lengths := flag.String("lengths", "chat", "request length profile for -serve: chat|rag")
	maxBatch := flag.Int("maxbatch", 0, "decode batch cap for -serve (0 = default)")
	kvBudgetGB := flag.Float64("kvbudget", 0, "KV-cache budget in GiB for -serve (0 = default 8)")
	capacityMode := flag.Bool("capacity", false, "binary-search the max sustained req/s per (design, mesh) cell")
	designsCSV := flag.String("designs", "mugi,saf", "comma-separated designs for -capacity")
	meshesCSV := flag.String("meshes", "1x1,2x2,4x4", "comma-separated meshes for -capacity")
	flag.Parse()

	if *all {
		runAll(*parallel)
		return
	}
	if *capacityMode {
		runCapacity(*designsCSV, *meshesCSV, *rows, *modelName, *traceKind,
			*lengths, *requests, *traceSeed, *maxBatch, *kvBudgetGB, *parallel)
		return
	}
	d, err := buildDesign(*design, *rows)
	if err != nil {
		fatal(err)
	}
	m, err := model.ByName(*modelName)
	if err != nil {
		fatal(err)
	}
	mesh, err := parseMesh(*meshStr)
	if err != nil {
		fatal(err)
	}
	if *serveMode {
		runServe(d, m, mesh, *traceKind, *lengths, *rate, *requests, *traceSeed, *maxBatch, *kvBudgetGB)
		return
	}
	var w model.Workload
	if *prefill {
		w = m.PrefillOps(*batch, *seq)
	} else {
		w = m.DecodeOps(*batch, *seq)
	}
	res := sim.Simulate(sim.Params{Design: d, Mesh: mesh}, w)
	tokens := w.TokensPerPass()

	fmt.Printf("design        %s  mesh %s\n", d.Name, mesh)
	fmt.Printf("workload      %s batch %d seq %d (decode=%v)\n", m.Name, *batch, *seq, w.Decode)
	fmt.Printf("throughput    %.3f tokens/s\n", res.TokensPerSecond)
	fmt.Printf("latency       %.4f s (compute %.4f, memory %.4f)\n", res.Seconds, res.ComputeSeconds, res.MemorySeconds)
	fmt.Printf("utilization   %.1f%%\n", res.Utilization*100)
	fmt.Printf("energy        %.4f J/pass  (%.2f mJ/token)\n", res.DynamicEnergy, res.EnergyPerToken(tokens)*1e3)
	fmt.Printf("power         %.3f W (leakage %.3f W)\n", res.PowerWatts, res.LeakageWatts)
	fmt.Printf("efficiency    %.2f tokens/J  %.3f tokens/s/W\n", res.TokensPerJoule(tokens), res.TokensPerSecondPerWatt())
	fmt.Printf("DRAM traffic  %.2f GB/pass\n", float64(res.DRAMBytes)/1e9)
	area := d.Area(arch.Cost45nm)
	fmt.Printf("area          %.2f mm2 (array %.2f, SRAM %.2f)\n", area.Total(), area.ArrayTotal(), area.SRAM)
	fmt.Println("latency breakdown (array cycles):")
	for _, cls := range []model.OpClass{model.Projection, model.Attention, model.FFN, model.Nonlinear} {
		fmt.Printf("  %-10v %14.0f (%.1f%%)\n", cls, res.CyclesByClass[cls],
			res.CyclesByClass[cls]/res.TotalCycles*100)
	}
}

// runServe drives one request-level serving scenario and prints the
// report.
func runServe(d arch.Design, m model.Config, mesh noc.Mesh,
	traceKind, lengths string, rate float64, requests int, seed int64,
	maxBatch int, kvBudgetGB float64) {
	kind, err := mugi.ParseTraceKind(traceKind)
	if err != nil {
		fatal(err)
	}
	profile, err := mugi.ParseLengthProfile(lengths)
	if err != nil {
		fatal(err)
	}
	tr, err := mugi.NewTrace(mugi.TraceConfig{
		Kind: kind, Rate: rate, Requests: requests, Seed: seed, Lengths: profile,
	})
	if err != nil {
		fatal(err)
	}
	rep, err := mugi.Serve(mugi.ServeConfig{
		Model: m, Design: d, Mesh: mesh,
		MaxBatch:      maxBatch,
		KVBudgetBytes: int64(kvBudgetGB * (1 << 30)),
	}, tr)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.String())
}

// runCapacity binary-searches the max sustained request rate of every
// (design, mesh) cell of the grid, sharding cells across the runner pool,
// and prints the sizing table. Cells are searched with the default
// bracketing (serve.DefaultMinRate..DefaultMaxRate) and goodput.
func runCapacity(designsCSV, meshesCSV string, rows int, modelName, traceKind, lengths string,
	requests int, seed int64, maxBatch int, kvBudgetGB float64, parallel int) {
	m, err := model.ByName(modelName)
	if err != nil {
		fatal(err)
	}
	kind, err := mugi.ParseTraceKind(traceKind)
	if err != nil {
		fatal(err)
	}
	profile, err := mugi.ParseLengthProfile(lengths)
	if err != nil {
		fatal(err)
	}
	var cells []mugi.CapacityCell
	for _, ds := range strings.Split(designsCSV, ",") {
		d, err := buildDesign(strings.TrimSpace(ds), rows)
		if err != nil {
			fatal(err)
		}
		for _, ms := range strings.Split(meshesCSV, ",") {
			mesh, err := parseMesh(strings.TrimSpace(ms))
			if err != nil {
				fatal(err)
			}
			cells = append(cells, mugi.CapacityCell{Design: d, Mesh: mesh})
		}
	}
	if parallel != 0 {
		runner.SetParallelism(parallel)
	}
	results := mugi.SearchCapacity(mugi.ServeConfig{
		Model: m, MaxBatch: maxBatch, KVBudgetBytes: int64(kvBudgetGB * (1 << 30)),
	}, cells, mugi.CapacitySpec{
		Trace: mugi.TraceConfig{Kind: kind, Requests: requests, Seed: seed, Lengths: profile},
	})
	fmt.Printf("capacity search: %s, %s %s traffic, %d requests/probe, seed %d\n",
		m.Name, traceKind, profile.Name, requests, seed)
	fmt.Printf("%-12s %6s %10s %7s %10s %9s %9s\n",
		"design", "mesh", "capacity", "probes", "tok/s out", "TTFT p99", "p99 lat")
	for _, res := range results {
		if res.Err != nil {
			fmt.Printf("%-12s %6s ERROR %v\n", res.Design, res.Mesh, res.Err)
			continue
		}
		if res.Capacity == 0 {
			fmt.Printf("%-12s %6s  unsustainable at floor rate\n", res.Design, res.Mesh)
			continue
		}
		at := res.AtCapacity
		fmt.Printf("%-12s %6s %10.4f %7d %10.2f %8.1fs %8.1fs\n",
			res.Design, res.Mesh, res.Capacity, res.Probes,
			at.TokensPerSecond, at.TTFT.P99, at.Latency.P99)
	}
}

// runAll regenerates the full registry on the bounded worker pool and
// prints each artifact in paper order, followed by the cache accounting.
func runAll(parallel int) {
	results := mugi.RunAll(mugi.Parallelism(parallel))
	for _, res := range results {
		fmt.Println(res.Text)
	}
	st := mugi.SimCacheStats()
	fmt.Fprintf(os.Stderr, "mugisim: %d artifacts, sim cache %d hits / %d misses / %d evictions\n",
		len(results), st.Hits, st.Misses, st.Evictions)
}

func buildDesign(kind string, rows int) (arch.Design, error) {
	switch strings.ToLower(kind) {
	case "mugi":
		return arch.Mugi(rows), nil
	case "mugil", "mugi-l":
		return arch.MugiL(rows), nil
	case "carat":
		return arch.Carat(rows), nil
	case "sa":
		return arch.SystolicArray(rows, false), nil
	case "saf", "sa-f":
		return arch.SystolicArray(rows, true), nil
	case "sd":
		return arch.SIMDArray(rows, false), nil
	case "sdf", "sd-f":
		return arch.SIMDArray(rows, true), nil
	case "tensor":
		return arch.TensorCore(), nil
	default:
		return arch.Design{}, fmt.Errorf("unknown design %q", kind)
	}
}

func parseMesh(s string) (noc.Mesh, error) {
	var r, c int
	if _, err := fmt.Sscanf(s, "%dx%d", &r, &c); err != nil {
		return noc.Mesh{}, fmt.Errorf("bad mesh %q (want RxC)", s)
	}
	if r < 1 || c < 1 {
		return noc.Mesh{}, fmt.Errorf("bad mesh %q", s)
	}
	return noc.NewMesh(r, c), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mugisim:", err)
	os.Exit(1)
}
