// Command mugisim runs architecture simulations: a single (design, model,
// mesh) point with the Table-3 style metrics and latency breakdown, a
// request-level serving scenario with -serve, a capacity search with
// -capacity, a fleet plan (TCO + price-performance frontiers) with
// -fleet, a static-vs-online autoscaling comparison with -autoscale, a
// price-of-nines sweep (N+k spare capacity under fault injection) with
// -faults, a graceful-degradation demo (flash crowd vs tenanted
// admission control, priced by class) with -overload, or — with -all —
// the full experiment registry fanned across the concurrent sweep
// runner.
//
// Usage:
//
//	mugisim -design mugi -rows 256 -model "Llama 2 70B (GQA)" -batch 8 -seq 4096
//	mugisim -design sa -rows 16 -mesh 4x4 -model "Llama 2 7B"
//	mugisim -serve -mesh 4x4 -rate 0.5 -requests 48 -trace bursty
//	mugisim -capacity -designs mugi,saf -meshes 1x1,2x2,4x4 -parallel 8
//	mugisim -fleet -designs mugi,saf -meshes 1x1,2x2 -replicas 1,2,4 -policy jsq
//	mugisim -autoscale                  # static plan vs online controller, one week
//	mugisim -faults -spares 0,1,2 -mtbf 120 -mttr 60 -nines 0.99
//	mugisim -overload -surge 4          # flash crowd vs admission control, priced
//	mugisim -overload -breaker 0.1      # ... plus circuit breakers over faults
//	mugisim -all -parallel 8            # every paper artifact, 8 workers
//
// See docs/CLI.md for the full flag reference and recipes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mugi"
	"mugi/internal/arch"
	"mugi/internal/cliusage"
	"mugi/internal/model"
	"mugi/internal/noc"
	"mugi/internal/runner"
	"mugi/internal/sim"
)

// usageGroups maps each flag to its mode group so -h renders a usage
// organized by what the user is trying to do, not one flat alphabetical
// list. Flags absent from every group land under "shared".
var usageGroups = []cliusage.Group{
	{Title: "single-pass simulation (default mode)", Flags: []string{"design", "rows", "mesh", "model", "batch", "seq", "prefill"}},
	{Title: "request-level serving (-serve)", Flags: []string{"serve", "trace", "rate", "requests", "seed", "lengths", "maxbatch", "kvbudget"}},
	{Title: "capacity search (-capacity)", Flags: []string{"capacity", "designs", "meshes"}},
	{Title: "fleet planning (-fleet)", Flags: []string{"fleet", "replicas", "policy", "slo-ttft", "slo-latency", "utilization"}},
	{Title: "fleet autoscaling (-autoscale)", Flags: []string{"autoscale", "week", "max-replicas", "min-replicas"}},
	{Title: "price of nines (-faults)", Flags: []string{"faults", "mtbf", "mttr", "straggler", "spares", "nines"}},
	{Title: "graceful degradation (-overload)", Flags: []string{"overload", "tenants", "surge", "brownout", "breaker"}},
	{Title: "full registry (-all)", Flags: []string{"all"}},
	{Title: "shared"},
}

func main() {
	design := flag.String("design", "mugi", "design: mugi|mugil|carat|sa|saf|sd|sdf|tensor")
	rows := flag.Int("rows", 256, "array height (VLP) or dimension (SA/SD)")
	meshStr := flag.String("mesh", "1x1", "NoC mesh, e.g. 1x1 or 4x4")
	modelName := flag.String("model", "Llama 2 70B (GQA)", "model name (see Table 1)")
	batch := flag.Int("batch", 8, "batch size")
	seq := flag.Int("seq", 4096, "context/sequence length")
	prefill := flag.Bool("prefill", false, "simulate prefill instead of decode")
	all := flag.Bool("all", false, "regenerate every registered experiment instead of one point")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
	serveMode := flag.Bool("serve", false, "run a request-level serving scenario instead of one pass")
	traceKind := flag.String("trace", "poisson", "arrival process: poisson|bursty|diurnal")
	rate := flag.Float64("rate", 0.5, "mean arrival rate in requests/s")
	requests := flag.Int("requests", 48, "request count (per probe in -capacity/-fleet)")
	traceSeed := flag.Int64("seed", 1, "trace seed")
	lengths := flag.String("lengths", "chat", "request length profile: chat|rag")
	maxBatch := flag.Int("maxbatch", 0, "decode batch cap (0 = default)")
	kvBudgetGB := flag.Float64("kvbudget", 0, "KV-cache budget in GiB (0 = default 8)")
	capacityMode := flag.Bool("capacity", false, "binary-search the max sustained req/s per (design, mesh) cell")
	designsCSV := flag.String("designs", "mugi,saf", "comma-separated designs for -capacity/-fleet")
	meshesCSV := flag.String("meshes", "1x1,2x2,4x4", "comma-separated meshes for -capacity/-fleet")
	fleetMode := flag.Bool("fleet", false, "plan fleets: SLO capacity, TCO, and price-performance frontiers")
	replicasCSV := flag.String("replicas", "1,2,4", "comma-separated replica counts for -fleet")
	policyName := flag.String("policy", "jsq", "fleet routing policy (round-robin|jsq|affinity) or, with -autoscale, scaling policy (target-util|queue|oracle)")
	sloTTFT := flag.Float64("slo-ttft", 60, "fleet SLO: p99 TTFT bound in seconds (0 = unbounded)")
	sloLatency := flag.Float64("slo-latency", 300, "fleet SLO: p99 latency bound in seconds (0 = unbounded)")
	utilization := flag.Float64("utilization", 0, "fleet TCO target utilization in (0,1] (0 = default 0.6)")
	autoscaleMode := flag.Bool("autoscale", false, "compare the static fleet plan against the online autoscaler (power states + DVFS)")
	week := flag.Bool("week", true, "autoscale horizon: a simulated week (false = one day)")
	maxReplicas := flag.Int("max-replicas", 0, "autoscale: owned replica ceiling (0 = size from the static plan)")
	minReplicas := flag.Int("min-replicas", 1, "autoscale: always-warm replica floor")
	faultsMode := flag.Bool("faults", false, "sweep N+k spare capacity under fault injection: the price of nines")
	mtbf := flag.Float64("mtbf", 120, "faults: mean time between per-replica crashes in seconds")
	mttr := flag.Float64("mttr", 60, "faults: mean time to repair in seconds")
	straggler := flag.Float64("straggler", 0, "faults: probability a replica is a straggler (slowed rounds)")
	sparesCSV := flag.String("spares", "0,1,2", "faults: comma-separated spare counts for the N+k axis")
	ninesTarget := flag.Float64("nines", 0.99, "faults: availability target for the cheapest-config verdict, in (0,1]")
	overloadMode := flag.Bool("overload", false, "demo graceful degradation: a flash crowd against tenanted admission control, priced by class")
	tenantsStr := flag.String("tenants", "interactive:0.3,standard:0.4,best-effort:0.3", "overload: tenant mix as class:share[,class:share...]")
	surge := flag.Float64("surge", 4, "overload: surge factor over the baseline rate (must exceed 1)")
	brownoutLadder := flag.Int("brownout", 3, "overload: brownout ladder depth, 1..3 rungs")
	breakerThreshold := flag.Float64("breaker", 0, "overload: circuit-breaker downtime threshold in (0,1] (0 = breakers off; arms -mtbf/-mttr faults)")
	flag.Usage = cliusage.Grouped(flag.CommandLine,
		"mugisim — architecture, serving, capacity, and fleet simulations.\nUsage: mugisim [mode flag] [flags]",
		usageGroups)
	flag.Parse()

	// set records which flags the user spelled out, so mode-specific
	// defaults never override an explicit choice.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	modes := 0
	for _, on := range []bool{*all, *serveMode, *capacityMode, *fleetMode, *autoscaleMode, *faultsMode, *overloadMode} {
		if on {
			modes++
		}
	}
	if err := validateFlags(modes, *minReplicas, *maxReplicas, *rate, *requests,
		*parallel, *mtbf, *mttr, *straggler, *ninesTarget); err != nil {
		usageError(err)
	}
	if err := validateOverloadFlags(*overloadMode, set["surge"], *surge, *brownoutLadder, *breakerThreshold); err != nil {
		usageError(err)
	}

	if *all {
		runAll(*parallel)
		return
	}
	if *autoscaleMode {
		// The autoscale demo has its own sensible defaults (a diurnal
		// trace on a multi-replica-worthy mesh at a rate with a real
		// day/night swing); flags the user set explicitly always win.
		if !set["trace"] {
			*traceKind = "diurnal"
		}
		if !set["model"] {
			*modelName = "Llama 2 7B"
		}
		if !set["mesh"] {
			*meshStr = "4x4"
		}
		if !set["rate"] {
			*rate = 0.1
		}
		if !set["policy"] {
			*policyName = "target-util"
		}
		if !set["seed"] {
			*traceSeed = 42
		}
		if !set["requests"] {
			*requests = 0 // sized from the rate and horizon below
		}
		runAutoscale(*design, *rows, *meshStr, *modelName, *traceKind, *lengths,
			*policyName, *rate, *requests, *traceSeed, *maxBatch, *kvBudgetGB,
			*week, *maxReplicas, *minReplicas, *sloTTFT, *sloLatency, *parallel)
		return
	}
	if *faultsMode {
		// The faults demo defaults to a bursty trace on a small faulty
		// fleet whose baseline sheds visibly, so the spare-capacity axis
		// has a story to tell; explicit flags always win.
		if !set["trace"] {
			*traceKind = "bursty"
		}
		if !set["model"] {
			*modelName = "Llama 2 7B"
		}
		if !set["meshes"] {
			*meshesCSV = "2x2"
		}
		if !set["replicas"] {
			*replicasCSV = "2"
		}
		if !set["designs"] {
			*designsCSV = "mugi,saf"
		}
		if !set["rate"] {
			*rate = 0.15
		}
		if !set["seed"] {
			*traceSeed = 7
		}
		runFaults(*designsCSV, *meshesCSV, *replicasCSV, *sparesCSV, *rows, *modelName,
			*traceKind, *lengths, *policyName, *rate, *requests, *traceSeed,
			*maxBatch, *kvBudgetGB, *mtbf, *mttr, *straggler, *ninesTarget, *parallel)
		return
	}
	if *overloadMode {
		// The overload demo fields a flash crowd against a small tenanted
		// fleet whose admission controller has real work to do; explicit
		// flags always win.
		if !set["trace"] {
			*traceKind = "flashcrowd"
		}
		if !set["model"] {
			*modelName = "Llama 2 7B"
		}
		if !set["mesh"] {
			*meshStr = "4x4"
		}
		if !set["rate"] {
			*rate = 0.5
		}
		if !set["requests"] {
			*requests = 600
		}
		if !set["seed"] {
			*traceSeed = 7
		}
		runOverload(*design, *rows, *meshStr, *modelName, *traceKind, *lengths, *tenantsStr,
			*rate, *surge, *requests, *traceSeed, *maxBatch, *kvBudgetGB,
			*brownoutLadder, *breakerThreshold, *mtbf, *mttr, *parallel)
		return
	}
	if *capacityMode {
		runCapacity(*designsCSV, *meshesCSV, *rows, *modelName, *traceKind,
			*lengths, *requests, *traceSeed, *maxBatch, *kvBudgetGB, *parallel)
		return
	}
	if *fleetMode {
		runFleet(*designsCSV, *meshesCSV, *replicasCSV, *rows, *modelName, *traceKind,
			*lengths, *policyName, *requests, *traceSeed, *maxBatch, *kvBudgetGB,
			*sloTTFT, *sloLatency, *utilization, *parallel)
		return
	}
	d, err := buildDesign(*design, *rows)
	if err != nil {
		fatal(err)
	}
	m, err := model.ByName(*modelName)
	if err != nil {
		fatal(err)
	}
	mesh, err := parseMesh(*meshStr)
	if err != nil {
		fatal(err)
	}
	if *serveMode {
		runServe(d, m, mesh, *traceKind, *lengths, *rate, *requests, *traceSeed, *maxBatch, *kvBudgetGB)
		return
	}
	var w model.Workload
	if *prefill {
		w = m.PrefillOps(*batch, *seq)
	} else {
		w = m.DecodeOps(*batch, *seq)
	}
	res := sim.Simulate(sim.Params{Design: d, Mesh: mesh}, w)
	tokens := w.TokensPerPass()

	fmt.Printf("design        %s  mesh %s\n", d.Name, mesh)
	fmt.Printf("workload      %s batch %d seq %d (decode=%v)\n", m.Name, *batch, *seq, w.Decode)
	fmt.Printf("throughput    %.3f tokens/s\n", res.TokensPerSecond)
	fmt.Printf("latency       %.4f s (compute %.4f, memory %.4f)\n", res.Seconds, res.ComputeSeconds, res.MemorySeconds)
	fmt.Printf("utilization   %.1f%%\n", res.Utilization*100)
	fmt.Printf("energy        %.4f J/pass  (%.2f mJ/token)\n", res.DynamicEnergy, res.EnergyPerToken(tokens)*1e3)
	fmt.Printf("power         %.3f W (leakage %.3f W)\n", res.PowerWatts, res.LeakageWatts)
	fmt.Printf("efficiency    %.2f tokens/J  %.3f tokens/s/W\n", res.TokensPerJoule(tokens), res.TokensPerSecondPerWatt())
	fmt.Printf("DRAM traffic  %.2f GB/pass\n", float64(res.DRAMBytes)/1e9)
	area := d.Area(arch.Cost45nm)
	fmt.Printf("area          %.2f mm2 (array %.2f, SRAM %.2f)\n", area.Total(), area.ArrayTotal(), area.SRAM)
	fmt.Println("latency breakdown (array cycles):")
	for _, cls := range []model.OpClass{model.Projection, model.Attention, model.FFN, model.Nonlinear} {
		fmt.Printf("  %-10v %14.0f (%.1f%%)\n", cls, res.CyclesByClass[cls],
			res.CyclesByClass[cls]/res.TotalCycles*100)
	}
}

// runServe drives one request-level serving scenario and prints the
// report.
func runServe(d arch.Design, m model.Config, mesh noc.Mesh,
	traceKind, lengths string, rate float64, requests int, seed int64,
	maxBatch int, kvBudgetGB float64) {
	kind, err := mugi.ParseTraceKind(traceKind)
	if err != nil {
		fatal(err)
	}
	profile, err := mugi.ParseLengthProfile(lengths)
	if err != nil {
		fatal(err)
	}
	tr, err := mugi.NewTrace(mugi.TraceConfig{
		Kind: kind, Rate: rate, Requests: requests, Seed: seed, Lengths: profile,
	})
	if err != nil {
		fatal(err)
	}
	rep, err := mugi.Serve(mugi.ServeConfig{
		Model: m, Design: d, Mesh: mesh,
		MaxBatch:      maxBatch,
		KVBudgetBytes: int64(kvBudgetGB * (1 << 30)),
	}, tr)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.String())
}

// runCapacity binary-searches the max sustained request rate of every
// (design, mesh) cell of the grid, sharding cells across the runner pool,
// and prints the sizing table. Cells are searched with the default
// bracketing (serve.DefaultMinRate..DefaultMaxRate) and goodput.
func runCapacity(designsCSV, meshesCSV string, rows int, modelName, traceKind, lengths string,
	requests int, seed int64, maxBatch int, kvBudgetGB float64, parallel int) {
	m, err := model.ByName(modelName)
	if err != nil {
		fatal(err)
	}
	kind, err := mugi.ParseTraceKind(traceKind)
	if err != nil {
		fatal(err)
	}
	profile, err := mugi.ParseLengthProfile(lengths)
	if err != nil {
		fatal(err)
	}
	var cells []mugi.CapacityCell
	for _, d := range parseDesigns(designsCSV, rows) {
		for _, mesh := range parseMeshes(meshesCSV) {
			cells = append(cells, mugi.CapacityCell{Design: d, Mesh: mesh})
		}
	}
	if parallel != 0 {
		runner.SetParallelism(parallel)
	}
	results := mugi.SearchCapacity(mugi.ServeConfig{
		Model: m, MaxBatch: maxBatch, KVBudgetBytes: int64(kvBudgetGB * (1 << 30)),
	}, cells, mugi.CapacitySpec{
		Trace: mugi.TraceConfig{Kind: kind, Requests: requests, Seed: seed, Lengths: profile},
	})
	fmt.Printf("capacity search: %s, %s %s traffic, %d requests/probe, seed %d\n",
		m.Name, traceKind, profile.Name, requests, seed)
	fmt.Printf("%-12s %6s %10s %7s %10s %9s %9s\n",
		"design", "mesh", "capacity", "probes", "tok/s out", "TTFT p99", "p99 lat")
	for _, res := range results {
		if res.Err != nil {
			fmt.Printf("%-12s %6s ERROR %v\n", res.Design, res.Mesh, res.Err)
			continue
		}
		if res.Capacity == 0 {
			fmt.Printf("%-12s %6s  unsustainable at floor rate\n", res.Design, res.Mesh)
			continue
		}
		at := res.AtCapacity
		fmt.Printf("%-12s %6s %10.4f %7d %10.2f %8.1fs %8.1fs\n",
			res.Design, res.Mesh, res.Capacity, res.Probes,
			at.TokensPerSecond, at.TTFT.P99, at.Latency.P99)
	}
}

// runFleet plans the design × mesh × replicas grid against the SLO and
// prints the priced cells plus the dominated-cell-pruned perf/$ and
// perf/W frontiers.
func runFleet(designsCSV, meshesCSV, replicasCSV string, rows int, modelName, traceKind,
	lengths, policyName string, requests int, seed int64, maxBatch int, kvBudgetGB float64,
	sloTTFT, sloLatency, utilization float64, parallel int) {
	m, err := model.ByName(modelName)
	if err != nil {
		fatal(err)
	}
	kind, err := mugi.ParseTraceKind(traceKind)
	if err != nil {
		fatal(err)
	}
	profile, err := mugi.ParseLengthProfile(lengths)
	if err != nil {
		fatal(err)
	}
	policy, err := mugi.ParseFleetPolicy(policyName)
	if err != nil {
		fatal(err)
	}
	var replicas []int
	for _, s := range strings.Split(replicasCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad replica count %q", s))
		}
		replicas = append(replicas, n)
	}
	if parallel != 0 {
		runner.SetParallelism(parallel)
	}
	spec := mugi.FleetPlanSpec{
		Base: mugi.ServeConfig{
			Model: m, MaxBatch: maxBatch, KVBudgetBytes: int64(kvBudgetGB * (1 << 30)),
		},
		Cells:  mugi.FleetGrid(parseDesigns(designsCSV, rows), parseMeshes(meshesCSV), replicas),
		Policy: policy,
		Trace:  mugi.TraceConfig{Kind: kind, Requests: requests, Seed: seed, Lengths: profile},
		SLO:    mugi.FleetSLO{TTFTP99: sloTTFT, LatencyP99: sloLatency},
		Book:   mugi.PriceBook{Utilization: utilization},
	}
	results := mugi.PlanFleet(spec)
	fmt.Printf("fleet plan: %s, %s %s probes (%d requests, seed %d), %s routing\n",
		m.Name, traceKind, profile.Name, spec.Trace.Requests, seed, policy)
	fmt.Printf("SLO: TTFT p99 <= %gs, latency p99 <= %gs\n", sloTTFT, sloLatency)
	fmt.Printf("%-12s %5s %4s %9s %9s %9s %10s %9s\n",
		"design", "mesh", "reps", "capacity", "$/hour", "$/1k req", "$/Mtok", "watts")
	for _, res := range results {
		if res.Err != nil {
			fmt.Printf("%-12s %5s %4d ERROR %v\n", res.Design, res.Mesh, res.Replicas, res.Err)
			continue
		}
		if res.Capacity == 0 {
			fmt.Printf("%-12s %5s %4d  cannot hold the SLO at the floor rate\n", res.Design, res.Mesh, res.Replicas)
			continue
		}
		fmt.Printf("%-12s %5s %4d %9.4f %9.4f %9.4f %10.4f %9.2f\n",
			res.Design, res.Mesh, res.Replicas, res.Capacity,
			res.TCO.DollarsPerHour, res.TCO.DollarsPer1k, res.TCO.DollarsPerMTok, res.TCO.AvgWatts)
	}
	for _, axis := range []mugi.FleetFrontierAxis{mugi.FrontierByDollar, mugi.FrontierByWatt} {
		front := mugi.FleetFrontier(results, axis)
		fmt.Printf("-- %s frontier (%d of %d cells) --\n", axis, len(front), len(results))
		for _, f := range front {
			fmt.Printf("%-12s %5s x%d  %.4f req/s  $%.4f/h  %.2f W\n",
				f.Design, f.Mesh, f.Replicas, f.Capacity, f.TCO.DollarsPerHour, f.TCO.AvgWatts)
		}
	}
}

// runAutoscale compares the static fleet plan against the online
// autoscaler on one long diurnal trace: first size the owned fleet the
// way PR 5's planner would buy it (the cheapest replica count whose
// SLO-compliant capacity covers the peak rate), then run the same
// stream through the always-on baseline and the dynamic controller and
// report both in $/day and SLO-violation minutes.
func runAutoscale(designName string, rows int, meshStr, modelName, traceKind, lengths,
	policyName string, rate float64, requests int, seed int64, maxBatch int, kvBudgetGB float64,
	week bool, maxReplicas, minReplicas int, sloTTFT, sloLatency float64, parallel int) {
	d, err := buildDesign(designName, rows)
	if err != nil {
		fatal(err)
	}
	m, err := model.ByName(modelName)
	if err != nil {
		fatal(err)
	}
	mesh, err := parseMesh(meshStr)
	if err != nil {
		fatal(err)
	}
	kind, err := mugi.ParseTraceKind(traceKind)
	if err != nil {
		fatal(err)
	}
	profile, err := mugi.ParseLengthProfile(lengths)
	if err != nil {
		fatal(err)
	}
	policy, err := mugi.ParseAutoscalePolicy(policyName)
	if err != nil {
		fatal(err)
	}
	if parallel != 0 {
		runner.SetParallelism(parallel)
	}
	horizon := 86400.0
	if week {
		horizon *= 7
	}
	if requests == 0 {
		// Over whole diurnal periods the mean rate is the nominal rate,
		// so this request count spans the horizon.
		requests = int(rate * horizon)
	}
	replica := mugi.ServeConfig{
		Model: m, Design: d, Mesh: mesh,
		MaxBatch: maxBatch, KVBudgetBytes: int64(kvBudgetGB * (1 << 30)),
	}
	// Peak arrival rate the static plan must cover: the top of the
	// diurnal swing (TraceConfig's default swing is 0.8), or the nominal
	// rate for flat arrival processes.
	peak := rate
	if kind == mugi.TraceDiurnal {
		peak = rate * 1.8
	}
	if maxReplicas == 0 {
		results := mugi.PlanFleet(mugi.FleetPlanSpec{
			Base:   replica,
			Cells:  mugi.FleetGrid([]mugi.Design{d}, []mugi.Mesh{mesh}, []int{1, 2, 4, 8}),
			Policy: mugi.FleetJSQ,
			Trace:  mugi.TraceConfig{Kind: mugi.TracePoisson, Requests: 24, Seed: seed, Lengths: profile},
			SLO:    mugi.FleetSLO{TTFTP99: sloTTFT, LatencyP99: sloLatency},
		})
		for _, res := range results {
			if res.Err == nil && res.Capacity >= peak {
				maxReplicas = res.Replicas
				fmt.Printf("static plan: %d x %s %s covers the %.3f req/s peak (cell capacity %.4f req/s)\n",
					res.Replicas, res.Design, res.Mesh, peak, res.Capacity)
				break
			}
		}
		if maxReplicas == 0 {
			fatal(fmt.Errorf("no planned cell covers the %.3f req/s peak; raise -max-replicas or shrink -rate", peak))
		}
	}
	cmp, err := mugi.CompareAutoscale(mugi.AutoscaleConfig{
		Replica:     replica,
		MinReplicas: minReplicas,
		MaxReplicas: maxReplicas,
		Policy:      policy,
		SLO:         mugi.AutoscaleSLO{TTFT: sloTTFT, Latency: sloLatency},
	}, mugi.TraceConfig{
		Kind: kind, Rate: rate, Requests: requests, Seed: seed,
		Lengths: profile, Period: 86400,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(cmp.String())
}

// runFaults sweeps the design × mesh × replicas grid crossed with the
// N+k spares axis under seeded fault injection and prints the
// availability table, the price-of-nines frontier, and the cheapest
// configuration meeting the -nines availability target.
func runFaults(designsCSV, meshesCSV, replicasCSV, sparesCSV string, rows int,
	modelName, traceKind, lengths, policyName string, rate float64, requests int,
	seed int64, maxBatch int, kvBudgetGB, mtbf, mttr, straggler, ninesTarget float64,
	parallel int) {
	m, err := model.ByName(modelName)
	if err != nil {
		fatal(err)
	}
	kind, err := mugi.ParseTraceKind(traceKind)
	if err != nil {
		fatal(err)
	}
	profile, err := mugi.ParseLengthProfile(lengths)
	if err != nil {
		fatal(err)
	}
	policy, err := mugi.ParseFleetPolicy(policyName)
	if err != nil {
		fatal(err)
	}
	replicas, err := parseCounts(replicasCSV, 1)
	if err != nil {
		fatal(err)
	}
	spares, err := parseCounts(sparesCSV, 0)
	if err != nil {
		fatal(err)
	}
	if parallel != 0 {
		runner.SetParallelism(parallel)
	}
	spec := mugi.NinesSpec{
		Base: mugi.ServeConfig{
			Model: m, MaxBatch: maxBatch, KVBudgetBytes: int64(kvBudgetGB * (1 << 30)),
		},
		Cells:  mugi.FleetGrid(parseDesigns(designsCSV, rows), parseMeshes(meshesCSV), replicas),
		Spares: spares,
		Policy: policy,
		Trace:  mugi.TraceConfig{Kind: kind, Rate: rate, Requests: requests, Seed: seed, Lengths: profile},
		Faults: mugi.FaultSpec{MTBF: mtbf, MTTR: mttr, StragglerProb: straggler, Seed: seed},
	}
	results := mugi.PlanNines(spec)
	fmt.Printf("price of nines: %s, %s %s probes (%d requests at %.3f req/s, seed %d), %s routing\n",
		m.Name, traceKind, profile.Name, requests, rate, seed, policy)
	fmt.Printf("faults: MTBF %gs  MTTR %gs  straggler prob %g\n", mtbf, mttr, straggler)
	for _, res := range results {
		fmt.Println(res)
	}
	front := mugi.NinesFrontier(results)
	fmt.Printf("-- price-of-nines frontier (%d of %d points) --\n", len(front), len(results))
	for _, f := range front {
		fmt.Println(f)
	}
	if best, ok := mugi.CheapestNines(results, ninesTarget); ok {
		fmt.Printf("cheapest at >= %g availability: %s %s N=%d+%d  $%.4f/1k  availability %.4f%% (%s)\n",
			ninesTarget, best.Design, best.Mesh, best.Replicas, best.Spares,
			best.DollarsPer1k, best.Availability*100, mugi.NinesString(best.Availability))
	} else {
		fmt.Printf("no planned point reaches availability %g — add spares or relax -nines\n", ninesTarget)
	}
}

// runOverload fields a surging tenanted trace against a two-replica
// fleet armed with admission control, strict-priority dispatch and a
// brownout ladder, then prices the isolation premium against the same
// silicon run as a shared best-effort fleet. With -breaker above zero
// the fleet also injects -mtbf/-mttr faults and arms per-replica
// circuit breakers over them.
func runOverload(designName string, rows int, meshStr, modelName, traceKind, lengths,
	tenantsStr string, rate, surge float64, requests int, seed int64,
	maxBatch int, kvBudgetGB float64, brownoutLadder int,
	breakerThreshold, mtbf, mttr float64, parallel int) {
	d, err := buildDesign(designName, rows)
	if err != nil {
		fatal(err)
	}
	m, err := model.ByName(modelName)
	if err != nil {
		fatal(err)
	}
	mesh, err := parseMesh(meshStr)
	if err != nil {
		fatal(err)
	}
	kind, err := mugi.ParseTraceKind(traceKind)
	if err != nil {
		fatal(err)
	}
	profile, err := mugi.ParseLengthProfile(lengths)
	if err != nil {
		fatal(err)
	}
	tenants, err := mugi.ParseTenants(tenantsStr)
	if err != nil {
		fatal(err)
	}
	if parallel != 0 {
		runner.SetParallelism(parallel)
	}
	if maxBatch == 0 {
		// Uncapped, overload pools inside the KV-limited decode batch and
		// the queue — the admission controller's whole domain — stays empty.
		maxBatch = 8
	}
	replica := mugi.ServeConfig{
		Model: m, Design: d, Mesh: mesh,
		MaxQueue: 12, MaxBatch: maxBatch,
		KVBudgetBytes: int64(kvBudgetGB * (1 << 30)),
		Admission:     &mugi.AdmissionSpec{},
		Brownout: &mugi.BrownoutSpec{
			Steps: mugi.DefaultBrownoutSteps()[:brownoutLadder], HighWater: 8, Dwell: 10,
		},
	}
	fleetCfg := mugi.FleetConfig{Replica: replica, Replicas: 2, Policy: mugi.FleetJSQ}
	if breakerThreshold > 0 {
		fleetCfg.Faults = mugi.FaultSpec{MTBF: mtbf, MTTR: mttr, Seed: seed}
		fleetCfg.MaxRedispatch = 2
		fleetCfg.Breaker = &mugi.BreakerSpec{Window: 300, Threshold: breakerThreshold, Cooldown: 60, Probes: 1}
	}
	spec := mugi.PrioritySpec{
		Fleet: fleetCfg,
		Trace: mugi.TraceConfig{
			Kind: kind, Rate: rate, Requests: requests, Seed: seed, Lengths: profile,
			SurgeFactor: surge, SurgeSpan: 120, SurgePeriod: 600,
			Tenants: tenants,
		},
	}
	spec.SLOs[mugi.TenantInteractive] = mugi.ClassSLO{TTFTP99: 15, LatencyP99: 60}
	spec.SLOs[mugi.TenantStandard] = mugi.ClassSLO{TTFTP99: 60, LatencyP99: 120}
	spec.SLOs[mugi.TenantBestEffort] = mugi.ClassSLO{LatencyP99: 900}
	res, err := mugi.PlanPriority(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graceful degradation: %s, %s %s x2, %s traffic %.2f req/s with %gx surges, seed %d\n",
		m.Name, d.Name, mesh, traceKind, rate, surge, seed)
	fmt.Print(res.String())
	tf := res.Tenanted.Fleet
	fmt.Printf("degradation under the surge: %d evicted  %d degraded  %d shed  brownout max level %d (%.0f s)\n",
		tf.Evicted, tf.Degraded, tf.Shed, tf.BrownoutMaxLevel, tf.BrownoutSeconds)
	if breakerThreshold > 0 {
		trips := 0
		for _, n := range res.Tenanted.BreakerTrips {
			trips += n
		}
		fmt.Printf("circuit breakers (MTBF %gs, MTTR %gs, threshold %.0f%%): %d trips %v  availability %.4f\n",
			mtbf, mttr, breakerThreshold*100, trips, res.Tenanted.BreakerTrips, tf.Availability)
	}
	sf := res.Shared.Fleet
	slo := spec.SLOs[mugi.TenantInteractive]
	verdict := "MISSED"
	if slo.Met(sf.TTFT.P99, sf.Latency.P99) {
		verdict = "met"
	}
	fmt.Printf("shared fleet tail everyone shares: ttft p99 %.2f s  latency p99 %.2f s  (interactive slo %gs: %s)\n",
		sf.TTFT.P99, sf.Latency.P99, slo.TTFTP99, verdict)
}

// runAll regenerates the full registry on the bounded worker pool and
// prints each artifact in paper order, followed by the cache accounting.
func runAll(parallel int) {
	results := mugi.RunAll(mugi.Parallelism(parallel))
	for _, res := range results {
		fmt.Println(res.Text)
	}
	st := mugi.SimCacheStats()
	fmt.Fprintf(os.Stderr, "mugisim: %d artifacts, sim cache %d hits / %d misses / %d evictions\n",
		len(results), st.Hits, st.Misses, st.Evictions)
}

// parseDesigns builds every design of a comma-separated spec, fataling
// on the first unknown name.
func parseDesigns(csv string, rows int) []arch.Design {
	var out []arch.Design
	for _, s := range strings.Split(csv, ",") {
		d, err := buildDesign(strings.TrimSpace(s), rows)
		if err != nil {
			fatal(err)
		}
		out = append(out, d)
	}
	return out
}

// parseMeshes parses every mesh of a comma-separated spec.
func parseMeshes(csv string) []noc.Mesh {
	var out []noc.Mesh
	for _, s := range strings.Split(csv, ",") {
		mesh, err := parseMesh(strings.TrimSpace(s))
		if err != nil {
			fatal(err)
		}
		out = append(out, mesh)
	}
	return out
}

func buildDesign(kind string, rows int) (arch.Design, error) {
	return arch.ByName(kind, rows)
}

func parseMesh(s string) (noc.Mesh, error) {
	var r, c int
	if _, err := fmt.Sscanf(s, "%dx%d", &r, &c); err != nil {
		return noc.Mesh{}, fmt.Errorf("bad mesh %q (want RxC)", s)
	}
	if r < 1 || c < 1 {
		return noc.Mesh{}, fmt.Errorf("bad mesh %q", s)
	}
	return noc.NewMesh(r, c), nil
}

// parseCounts parses a comma-separated list of non-negative integers,
// rejecting anything below the floor.
func parseCounts(csv string, floor int) ([]int, error) {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < floor {
			return nil, fmt.Errorf("bad count %q (want integers >= %d)", s, floor)
		}
		out = append(out, n)
	}
	return out, nil
}

// validateFlags rejects contradictory flag combinations up front, before
// any mode starts simulating — one mode flag at a time, a replica floor
// below the ceiling, and rates/probabilities inside their domains.
func validateFlags(modes, minReplicas, maxReplicas int, rate float64, requests,
	parallel int, mtbf, mttr, straggler, ninesTarget float64) error {
	if modes > 1 {
		return fmt.Errorf("choose one mode flag: -all, -serve, -capacity, -fleet, -autoscale, -faults, or -overload")
	}
	if maxReplicas > 0 && minReplicas > maxReplicas {
		return fmt.Errorf("-min-replicas %d exceeds -max-replicas %d", minReplicas, maxReplicas)
	}
	if minReplicas < 0 {
		return fmt.Errorf("-min-replicas %d must be non-negative", minReplicas)
	}
	if rate <= 0 {
		return fmt.Errorf("-rate %g must be positive", rate)
	}
	if requests < 0 {
		return fmt.Errorf("-requests %d must be non-negative", requests)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel %d must be non-negative", parallel)
	}
	if mtbf < 0 || mttr < 0 {
		return fmt.Errorf("-mtbf %g and -mttr %g must be non-negative", mtbf, mttr)
	}
	if straggler < 0 || straggler > 1 {
		return fmt.Errorf("-straggler %g must be a probability in [0,1]", straggler)
	}
	if ninesTarget <= 0 || ninesTarget > 1 {
		return fmt.Errorf("-nines %g must be an availability in (0,1]", ninesTarget)
	}
	return nil
}

// validateOverloadFlags rejects overload-flag contradictions: -surge
// spelled out without the mode it shapes, a brownout ladder with no
// rungs (or more rungs than the built-in ladder has), and a breaker
// threshold outside its (0,1] domain.
func validateOverloadFlags(overloadMode, surgeSet bool, surge float64, brownoutLadder int, breakerThreshold float64) error {
	if surgeSet && !overloadMode {
		return fmt.Errorf("-surge only shapes the -overload flash crowd; add -overload")
	}
	if overloadMode && surge <= 1 {
		return fmt.Errorf("-surge %g must exceed 1 (it multiplies the baseline rate)", surge)
	}
	if brownoutLadder < 1 || brownoutLadder > 3 {
		return fmt.Errorf("-brownout %d must be a ladder depth in 1..3", brownoutLadder)
	}
	if breakerThreshold < 0 || breakerThreshold > 1 {
		return fmt.Errorf("-breaker %g must be a downtime fraction in (0,1], or 0 to disable", breakerThreshold)
	}
	return nil
}

// usageError reports a flag contradiction and exits with the
// conventional usage status.
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "mugisim:", err)
	fmt.Fprintln(os.Stderr, "run 'mugisim -h' for the flag reference")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mugisim:", err)
	os.Exit(1)
}
