package main

import (
	"testing"

	"mugi"
)

func TestBuildDesign(t *testing.T) {
	cases := []struct {
		kind string
		rows int
		want string
	}{
		{"mugi", 128, "Mugi (128)"},
		{"MUGI", 64, "Mugi (64)"},
		{"mugil", 128, "Mugi-L (128)"},
		{"mugi-l", 128, "Mugi-L (128)"},
		{"carat", 256, "Carat (256)"},
		{"sa", 16, "SA (16)"},
		{"saf", 16, "SA-F (16)"},
		{"sa-f", 16, "SA-F (16)"},
		{"sd", 16, "SD (16)"},
		{"sdf", 16, "SD-F (16)"},
		{"tensor", 0, "Tensor"},
	}
	for _, c := range cases {
		d, err := buildDesign(c.kind, c.rows)
		if err != nil || d.Name != c.want {
			t.Errorf("buildDesign(%q, %d) = %q, %v", c.kind, c.rows, d.Name, err)
		}
	}
	if _, err := buildDesign("tpu", 8); err == nil {
		t.Error("unknown design should error")
	}
}

func TestParseMesh(t *testing.T) {
	m, err := parseMesh("4x4")
	if err != nil || m.Nodes() != 16 {
		t.Errorf("parseMesh(4x4): %v %v", m, err)
	}
	m, err = parseMesh("2x1")
	if err != nil || m.Nodes() != 2 {
		t.Errorf("parseMesh(2x1): %v %v", m, err)
	}
	for _, bad := range []string{"", "4", "ax4", "0x4", "-1x2"} {
		if _, err := parseMesh(bad); err == nil {
			t.Errorf("parseMesh(%q) should error", bad)
		}
	}
}

func TestParseLengthProfileFlag(t *testing.T) {
	for _, s := range []string{"chat", "CHAT", "rag"} {
		p, err := mugi.ParseLengthProfile(s)
		if err != nil || p.MaxPrompt == 0 {
			t.Errorf("ParseLengthProfile(%q) = %+v, %v", s, p, err)
		}
	}
	if _, err := mugi.ParseLengthProfile("code"); err == nil {
		t.Error("unknown profile should error")
	}
}
