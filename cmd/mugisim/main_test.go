package main

import (
	"testing"

	"mugi"
)

func TestBuildDesign(t *testing.T) {
	cases := []struct {
		kind string
		rows int
		want string
	}{
		{"mugi", 128, "Mugi (128)"},
		{"MUGI", 64, "Mugi (64)"},
		{"mugil", 128, "Mugi-L (128)"},
		{"mugi-l", 128, "Mugi-L (128)"},
		{"carat", 256, "Carat (256)"},
		{"sa", 16, "SA (16)"},
		{"saf", 16, "SA-F (16)"},
		{"sa-f", 16, "SA-F (16)"},
		{"sd", 16, "SD (16)"},
		{"sdf", 16, "SD-F (16)"},
		{"tensor", 0, "Tensor"},
	}
	for _, c := range cases {
		d, err := buildDesign(c.kind, c.rows)
		if err != nil || d.Name != c.want {
			t.Errorf("buildDesign(%q, %d) = %q, %v", c.kind, c.rows, d.Name, err)
		}
	}
	if _, err := buildDesign("tpu", 8); err == nil {
		t.Error("unknown design should error")
	}
}

func TestParseMesh(t *testing.T) {
	m, err := parseMesh("4x4")
	if err != nil || m.Nodes() != 16 {
		t.Errorf("parseMesh(4x4): %v %v", m, err)
	}
	m, err = parseMesh("2x1")
	if err != nil || m.Nodes() != 2 {
		t.Errorf("parseMesh(2x1): %v %v", m, err)
	}
	for _, bad := range []string{"", "4", "ax4", "0x4", "-1x2"} {
		if _, err := parseMesh(bad); err == nil {
			t.Errorf("parseMesh(%q) should error", bad)
		}
	}
}

// flagCase perturbs one field of a passing baseline at a time.
type flagCase struct {
	name                     string
	modes                    int
	minReplicas, maxReplicas int
	rate                     float64
	requests, parallel       int
	mtbf, mttr               float64
	straggler, ninesTarget   float64
	wantErr                  bool
}

func okCase(name string) flagCase {
	return flagCase{
		name: name, modes: 1, minReplicas: 1, maxReplicas: 4,
		rate: 0.5, requests: 48, mtbf: 120, mttr: 60, ninesTarget: 0.99,
	}
}

// TestValidateFlags pins the contradictory-combo rejections: two mode
// flags at once, a replica floor above the ceiling, and rates or
// probabilities outside their domains must all fail before any
// simulation starts.
func TestValidateFlags(t *testing.T) {
	cases := []flagCase{
		okCase("baseline"),
		okCase("unsized ceiling"),
		okCase("two modes"),
		okCase("floor above ceiling"),
		okCase("negative floor"),
		okCase("zero rate"),
		okCase("negative requests"),
		okCase("negative parallel"),
		okCase("negative mtbf"),
		okCase("negative mttr"),
		okCase("straggler above one"),
		okCase("nines above one"),
		okCase("zero nines"),
	}
	cases[1].maxReplicas = 0 // 0 = "size from the static plan": any floor is fine
	cases[1].minReplicas = 9
	cases[2].modes = 2
	cases[2].wantErr = true
	cases[3].minReplicas = 5
	cases[3].maxReplicas = 2
	cases[3].wantErr = true
	cases[4].minReplicas = -1
	cases[4].wantErr = true
	cases[5].rate = 0
	cases[5].wantErr = true
	cases[6].requests = -1
	cases[6].wantErr = true
	cases[7].parallel = -1
	cases[7].wantErr = true
	cases[8].mtbf = -1
	cases[8].wantErr = true
	cases[9].mttr = -1
	cases[9].wantErr = true
	cases[10].straggler = 1.5
	cases[10].wantErr = true
	cases[11].ninesTarget = 1.1
	cases[11].wantErr = true
	cases[12].ninesTarget = 0
	cases[12].wantErr = true

	for _, c := range cases {
		err := validateFlags(c.modes, c.minReplicas, c.maxReplicas, c.rate,
			c.requests, c.parallel, c.mtbf, c.mttr, c.straggler, c.ninesTarget)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: got err %v, want error=%v", c.name, err, c.wantErr)
		}
	}
}

// TestValidateOverloadFlags pins the overload-flag rejections: -surge
// without -overload, a brownout ladder with zero rungs (or more than
// the built-in ladder has), and breaker thresholds outside (0,1].
func TestValidateOverloadFlags(t *testing.T) {
	cases := []struct {
		name                   string
		overloadMode, surgeSet bool
		surge                  float64
		brownoutLadder         int
		breakerThreshold       float64
		wantErr                bool
	}{
		{name: "defaults no mode", surge: 4, brownoutLadder: 3},
		{name: "overload defaults", overloadMode: true, surge: 4, brownoutLadder: 3},
		{name: "surge with overload", overloadMode: true, surgeSet: true, surge: 6, brownoutLadder: 3},
		{name: "breaker armed", overloadMode: true, surge: 4, brownoutLadder: 3, breakerThreshold: 0.1},
		{name: "breaker at one", overloadMode: true, surge: 4, brownoutLadder: 3, breakerThreshold: 1},
		{name: "shallow ladder", overloadMode: true, surge: 4, brownoutLadder: 1},
		{name: "surge without overload", surgeSet: true, surge: 6, brownoutLadder: 3, wantErr: true},
		{name: "surge below one", overloadMode: true, surge: 0.5, brownoutLadder: 3, wantErr: true},
		{name: "zero-rung ladder", overloadMode: true, surge: 4, brownoutLadder: 0, wantErr: true},
		{name: "ladder too deep", overloadMode: true, surge: 4, brownoutLadder: 4, wantErr: true},
		{name: "breaker above one", overloadMode: true, surge: 4, brownoutLadder: 3, breakerThreshold: 1.5, wantErr: true},
		{name: "negative breaker", overloadMode: true, surge: 4, brownoutLadder: 3, breakerThreshold: -0.1, wantErr: true},
	}
	for _, c := range cases {
		err := validateOverloadFlags(c.overloadMode, c.surgeSet, c.surge, c.brownoutLadder, c.breakerThreshold)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: got err %v, want error=%v", c.name, err, c.wantErr)
		}
	}
}

// TestParseCounts covers the CSV count parser behind -replicas and
// -spares.
func TestParseCounts(t *testing.T) {
	got, err := parseCounts(" 0, 1,2", 0)
	if err != nil || len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("parseCounts: got %v, %v", got, err)
	}
	if _, err := parseCounts("0,1", 1); err == nil {
		t.Error("count below floor accepted")
	}
	if _, err := parseCounts("1,x", 0); err == nil {
		t.Error("non-integer count accepted")
	}
}

func TestParseLengthProfileFlag(t *testing.T) {
	for _, s := range []string{"chat", "CHAT", "rag"} {
		p, err := mugi.ParseLengthProfile(s)
		if err != nil || p.MaxPrompt == 0 {
			t.Errorf("ParseLengthProfile(%q) = %+v, %v", s, p, err)
		}
	}
	if _, err := mugi.ParseLengthProfile("code"); err == nil {
		t.Error("unknown profile should error")
	}
}
