package mugi

import (
	"strings"
	"testing"

	"mugi/internal/runner"
)

// TestRunExperimentResolvesEveryRegistryID is the regression guard for the
// facade: every registered artifact id must keep resolving and rendering
// through the single-experiment path.
func TestRunExperimentResolvesEveryRegistryID(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry in -short mode")
	}
	for _, e := range Experiments() {
		out, err := RunExperiment(e.ID)
		if err != nil {
			t.Fatalf("RunExperiment(%q): %v", e.ID, err)
		}
		if !strings.HasPrefix(out, "== "+e.ID+": ") {
			t.Errorf("%s: malformed rendering %q", e.ID, out[:min(40, len(out))])
		}
	}
}

func TestRunExperimentsUnknownID(t *testing.T) {
	if _, err := RunExperiments([]string{"tab3", "fig99"}); err == nil {
		t.Fatal("unknown id must fail before any experiment runs")
	}
}

func TestRunExperimentsPreservesRequestOrder(t *testing.T) {
	ids := []string{"fig11", "fig4", "tab3"}
	results, err := RunExperiments(ids, Parallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if results[i].ID != id {
			t.Errorf("results[%d] = %s, want %s", i, results[i].ID, id)
		}
	}
}

// TestRunAllParallelMatchesSerialFacade runs the complete registry through
// RunAll at parallelism 1 and parallelism 8 with cold caches and demands
// byte-identical renderings — the facade-level spelling of the runner's
// determinism guarantee.
func TestRunAllParallelMatchesSerialFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry in -short mode")
	}
	ResetSimCache()
	serial := RunAll(Parallelism(1))
	ResetSimCache()
	parallel := RunAll(Parallelism(8))
	defer ResetSimCache()
	if len(serial) != len(parallel) || len(serial) != len(Experiments()) {
		t.Fatalf("result counts: serial %d, parallel %d, registry %d",
			len(serial), len(parallel), len(Experiments()))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("%s: parallel rendering diverges from serial", serial[i].ID)
		}
	}
	if st := SimCacheStats(); st.Hits == 0 || st.Misses == 0 {
		t.Errorf("cache accounting degenerate: %d hits / %d misses", st.Hits, st.Misses)
	}
}

// TestServeDeterministicAcrossParallelism is the serving-simulator
// spelling of the same guarantee: one seeded trace driven through Serve
// renders byte-identical reports whether the sim cache is fed serially or
// by eight workers.
func TestServeDeterministicAcrossParallelism(t *testing.T) {
	tr, err := NewTrace(TraceConfig{Kind: TraceBursty, Rate: 0.3, Requests: 24, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ServeConfig{Model: Llama2_7B, Design: NewMugi(256), Mesh: NewMesh(2, 2)}
	defer runner.SetParallelism(0)
	defer ResetSimCache()
	renderings := make([]string, 2)
	for i, par := range []int{1, 8} {
		runner.SetParallelism(par)
		ResetSimCache()
		rep, err := Serve(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		renderings[i] = rep.String()
	}
	if renderings[0] != renderings[1] {
		t.Error("serving report diverges across runner parallelism")
	}
	if tr2, _ := NewTrace(TraceConfig{Kind: TraceBursty, Rate: 0.3, Requests: 24, Seed: 11}); tr2.Horizon() != tr.Horizon() {
		t.Error("trace generation not deterministic")
	}
}
