package mugi

import (
	"strings"
	"testing"
)

// TestRunExperimentResolvesEveryRegistryID is the regression guard for the
// facade: every registered artifact id must keep resolving and rendering
// through the single-experiment path.
func TestRunExperimentResolvesEveryRegistryID(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry in -short mode")
	}
	for _, e := range Experiments() {
		out, err := RunExperiment(e.ID)
		if err != nil {
			t.Fatalf("RunExperiment(%q): %v", e.ID, err)
		}
		if !strings.HasPrefix(out, "== "+e.ID+": ") {
			t.Errorf("%s: malformed rendering %q", e.ID, out[:min(40, len(out))])
		}
	}
}

func TestRunExperimentsUnknownID(t *testing.T) {
	if _, err := RunExperiments([]string{"tab3", "fig99"}); err == nil {
		t.Fatal("unknown id must fail before any experiment runs")
	}
}

func TestRunExperimentsPreservesRequestOrder(t *testing.T) {
	ids := []string{"fig11", "fig4", "tab3"}
	results, err := RunExperiments(ids, Parallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if results[i].ID != id {
			t.Errorf("results[%d] = %s, want %s", i, results[i].ID, id)
		}
	}
}

// TestRunAllParallelMatchesSerialFacade runs the complete registry through
// RunAll at parallelism 1 and parallelism 8 with cold caches and demands
// byte-identical renderings — the facade-level spelling of the runner's
// determinism guarantee.
func TestRunAllParallelMatchesSerialFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry in -short mode")
	}
	ResetSimCache()
	serial := RunAll(Parallelism(1))
	ResetSimCache()
	parallel := RunAll(Parallelism(8))
	defer ResetSimCache()
	if len(serial) != len(parallel) || len(serial) != len(Experiments()) {
		t.Fatalf("result counts: serial %d, parallel %d, registry %d",
			len(serial), len(parallel), len(Experiments()))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("%s: parallel rendering diverges from serial", serial[i].ID)
		}
	}
	if hits, misses := SimCacheStats(); hits == 0 || misses == 0 {
		t.Errorf("cache accounting degenerate: %d hits / %d misses", hits, misses)
	}
}
